//! Table 5: time-to-accuracy for every end-to-end pipeline, with the
//! paper's reported numbers printed alongside. Absolute times are not
//! comparable (our substrate is a single-machine simulator over synthetic
//! data); the claim being reproduced is that **each pipeline reaches strong
//! statistical performance end-to-end under the full optimizer**.

use keystone_bench::{print_table, save_json, secs, time_once};
use keystone_core::context::ExecContext;
use keystone_core::optimizer::PipelineOptions;
use keystone_core::profiler::ProfileOptions;
use keystone_ops::eval::accuracy;
use keystone_solvers::logistic::one_hot;
use keystone_workloads::image_gen::ImageDatasetSpec;
use keystone_workloads::pipelines::{
    cifar_pipeline, image_classification_pipeline, predictions, speech_pipeline,
    text_classification_pipeline, CifarPipelineConfig, ImagePipelineConfig,
    SpeechPipelineConfig, TextPipelineConfig,
};
use keystone_workloads::{AmazonLike, TimitLike};

fn opts() -> PipelineOptions {
    PipelineOptions {
        profile: ProfileOptions {
            sizes: vec![96, 192],
            ..Default::default()
        },
        ..Default::default()
    }
}

fn main() {
    let mut rows = Vec::new();

    // Amazon (paper: 91.6% accuracy).
    {
        let (train, test) = AmazonLike::with_docs(1_500).generate_split(0.2);
        let labels = one_hot(&train.labels, 2);
        let cfg = TextPipelineConfig {
            max_features: 2_000,
            ..Default::default()
        };
        let pipe = text_classification_pipeline(&cfg, &train.docs, &labels);
        let ctx = ExecContext::calibrated(8);
        let ((fitted, _), fit_secs) = time_once(|| pipe.fit(&ctx, &opts()));
        let acc = accuracy(
            &predictions(&fitted.apply(&test.docs, &ctx)),
            &test.labels.collect(),
        );
        rows.push(vec![
            "Amazon".into(),
            format!("{:.1}%", acc * 100.0),
            secs(fit_secs),
            "91.6%".into(),
            "3.3 min".into(),
        ]);
    }

    // TIMIT (paper: 66.06%, 147 classes; we scale class count down).
    {
        let classes = 16;
        let (train, test) = TimitLike {
            separation: 3.5,
            ..TimitLike::new(1_500, 40, classes)
        }
        .generate_split(0.2);
        let labels = one_hot(&train.labels, classes);
        let cfg = SpeechPipelineConfig {
            blocks: 4,
            block_dim: 64,
            gamma: 0.07,
            ..Default::default()
        };
        let pipe = speech_pipeline(&cfg, &train.data, &labels);
        let ctx = ExecContext::calibrated(8);
        let ((fitted, _), fit_secs) = time_once(|| pipe.fit(&ctx, &opts()));
        let acc = accuracy(
            &predictions(&fitted.apply(&test.data, &ctx)),
            &test.labels.collect(),
        );
        rows.push(vec![
            "TIMIT".into(),
            format!("{:.1}%", acc * 100.0),
            secs(fit_secs),
            "66.06%".into(),
            "138 min".into(),
        ]);
    }

    // VOC (paper: 57.2% mAP).
    {
        let classes = 5;
        let (train, test) = ImageDatasetSpec {
            classes,
            ..ImageDatasetSpec::voc_like(150, 32)
        }
        .generate_split(0.25);
        let labels = one_hot(&train.labels, classes);
        let cfg = ImagePipelineConfig {
            pca_dims: 12,
            gmm_k: 4,
            ..Default::default()
        };
        let pipe = image_classification_pipeline(&cfg, &train.images, &labels);
        let ctx = ExecContext::calibrated(8);
        let ((fitted, _), fit_secs) = time_once(|| pipe.fit(&ctx, &opts()));
        let acc = accuracy(
            &predictions(&fitted.apply(&test.images, &ctx)),
            &test.labels.collect(),
        );
        rows.push(vec![
            "VOC".into(),
            format!("{:.1}%", acc * 100.0),
            secs(fit_secs),
            "57.2% mAP".into(),
            "7 min".into(),
        ]);
    }

    // CIFAR-10 (paper: 84.0%).
    {
        let classes = 5;
        let (train, test) = ImageDatasetSpec {
            classes,
            ..ImageDatasetSpec::cifar_like(200)
        }
        .generate_split(0.25);
        let labels = one_hot(&train.labels, classes);
        let cfg = CifarPipelineConfig {
            filters: 8,
            ..Default::default()
        };
        let pipe = cifar_pipeline(&cfg, &train.images, &labels);
        let ctx = ExecContext::calibrated(8);
        let ((fitted, _), fit_secs) = time_once(|| pipe.fit(&ctx, &opts()));
        let acc = accuracy(
            &predictions(&fitted.apply(&test.images, &ctx)),
            &test.labels.collect(),
        );
        rows.push(vec![
            "CIFAR-10".into(),
            format!("{:.1}%", acc * 100.0),
            secs(fit_secs),
            "84.0%".into(),
            "28.7 min".into(),
        ]);
    }

    print_table(
        "Table 5: time-to-accuracy (ours = synthetic data @ bench scale)",
        &["pipeline", "accuracy", "fit time", "paper acc", "paper time"],
        &rows,
    );
    save_json("table5_end_to_end", &rows);
    println!(
        "\nAbsolute numbers are not comparable (synthetic data, scaled size, single\n\
         machine); the reproduced claim is that every pipeline trains end-to-end to\n\
         accuracy far above chance with the full optimizer enabled."
    );
}
