//! Figure 6: solver runtime as the number of features grows, on a sparse
//! Amazon-like problem and a dense TIMIT-like problem.
//!
//! The paper's finding: on sparse text features L-BFGS is 5–260× faster
//! than the exact/block solvers (it exploits `O(nnz)` gradients, and the
//! exact solver runs out of memory past 4k features); on dense features the
//! exact solver wins at small `d` but its quadratic growth hands the lead
//! to the block solver past ~8k features.
//!
//! Part A measures wall time on scaled problems; part B evaluates the
//! Table 1 cost models at **paper scale** (Table 3 record counts on
//! 16 × r3.4xlarge) over the paper's 1k–64k feature range, which is where
//! the published crossovers appear. `x` marks infeasible plans.

use keystone_bench::problems::{dense, mse, sparse};
use keystone_bench::{print_table, quick_mode, save_json, secs, time_once};
use keystone_core::context::ExecContext;
use keystone_core::operator::LabelEstimator;
use keystone_dataflow::cluster::ClusterProfile;
use keystone_solvers::block::BlockSolver;
use keystone_solvers::cost::{
    block_solve_cost, dist_qr_cost, lbfgs_cost, local_qr_cost, SolveShape, INFEASIBLE,
};
use keystone_solvers::dist_qr::DistQrSolver;
use keystone_solvers::lbfgs::LbfgsSolver;

fn fmt_cost(c: keystone_dataflow::cost::CostProfile, r: &keystone_dataflow::cluster::ResourceDesc) -> String {
    if c.flops >= INFEASIBLE {
        "x".to_string()
    } else {
        secs(c.estimated_seconds(r))
    }
}

fn main() {
    let ctx = ExecContext::default_cluster();
    let dims: Vec<usize> = if quick_mode() {
        vec![256, 512, 1024, 2048]
    } else {
        vec![1024, 2048, 4096, 8192, 16384]
    };

    // ---------------- Part A: measured wall time, scaled problems --------
    let mut rows = Vec::new();
    for &d in &dims {
        let n = 4_000;
        let (data, labels) = sparse(n, d, 20, 2, 42);
        let (exact, t_exact) = time_once(|| DistQrSolver::new().fit(&data, &labels, &ctx));
        let (lb, t_lbfgs) = time_once(|| LbfgsSolver::with_iters(20).fit(&data, &labels, &ctx));
        let (bl, t_block) =
            time_once(|| BlockSolver::with_config(d / 4, 5).fit(&data, &labels, &ctx));
        rows.push(vec![
            "amazon".to_string(),
            format!("{}", d),
            secs(t_exact),
            secs(t_block),
            secs(t_lbfgs),
            format!(
                "{:.3}/{:.3}/{:.3}",
                mse(&*exact, &data, &labels),
                mse(&*bl, &data, &labels),
                mse(&*lb, &data, &labels)
            ),
        ]);
    }
    for &d in &dims {
        let n = 1_000;
        let k = 32;
        let (data, labels) = dense(n, d, k, 7);
        let (exact, t_exact) = time_once(|| DistQrSolver::new().fit(&data, &labels, &ctx));
        let (lb, t_lbfgs) = time_once(|| LbfgsSolver::with_iters(20).fit(&data, &labels, &ctx));
        let (bl, t_block) = time_once(|| {
            BlockSolver::with_config((d / 4).max(64), 5).fit(&data, &labels, &ctx)
        });
        rows.push(vec![
            "timit".to_string(),
            format!("{}", d),
            secs(t_exact),
            secs(t_block),
            secs(t_lbfgs),
            format!(
                "{:.3}/{:.3}/{:.3}",
                mse(&*exact, &data, &labels),
                mse(&*bl, &data, &labels),
                mse(&*lb, &data, &labels)
            ),
        ]);
    }
    print_table(
        "Fig 6a: measured wall time at bench scale (loss = exact/block/lbfgs)",
        &["dataset", "features", "exact", "block", "lbfgs", "train mse e/b/l"],
        &rows,
    );
    save_json("fig6_solvers_measured", &rows);

    // ---------------- Part B: cost model at paper scale -------------------
    let r16 = ClusterProfile::R3_4xlarge.descriptor(16);
    let mut model_rows = Vec::new();
    for &d in &[1024usize, 2048, 4096, 8192, 16384, 32768, 65536] {
        // Amazon: 65M examples, sparse (~100 nnz), binary.
        let amazon = SolveShape::new(65_000_000, d, 2, Some(100.0));
        model_rows.push(vec![
            "amazon".to_string(),
            format!("{}", d),
            fmt_cost(local_qr_cost(&amazon, &r16), &r16),
            fmt_cost(dist_qr_cost(&amazon, &r16), &r16),
            fmt_cost(block_solve_cost(&amazon, 5, 4096, &r16), &r16),
            fmt_cost(lbfgs_cost(&amazon, 20, &r16), &r16),
        ]);
    }
    for &d in &[1024usize, 2048, 4096, 8192, 16384, 32768, 65536] {
        // TIMIT: 2.25M examples, dense, 147 classes. Fig. 6 compares time
        // to reach the *same training loss*: on dense ill-conditioned
        // features L-BFGS needs ~100 iterations to match the exact
        // solution, while 5 Gauss-Seidel sweeps over 2048-wide blocks
        // suffice.
        let timit = SolveShape::new(2_251_569, d, 147, None);
        model_rows.push(vec![
            "timit".to_string(),
            format!("{}", d),
            fmt_cost(local_qr_cost(&timit, &r16), &r16),
            fmt_cost(dist_qr_cost(&timit, &r16), &r16),
            fmt_cost(block_solve_cost(&timit, 5, 2048, &r16), &r16),
            fmt_cost(lbfgs_cost(&timit, 100, &r16), &r16),
        ]);
    }
    print_table(
        "Fig 6b: Table 1 cost models @ paper scale (16 nodes; x = infeasible)",
        &["dataset", "features", "local-qr", "dist-qr", "block", "lbfgs"],
        &model_rows,
    );
    save_json("fig6_solvers_model", &model_rows);
    println!(
        "\nExpected shape: amazon — lbfgs dominates everywhere and local exact\n\
         becomes infeasible (the paper's solver crash past 4k features);\n\
         timit — exact (dist-qr) cheapest below ~8k features, block overtakes\n\
         beyond that, lbfgs 2-3x slower than block on dense many-class data\n\
         (at loss-matched iteration budgets), exactly Fig. 6's ordering."
    );
}
