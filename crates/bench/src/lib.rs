//! # keystone-bench
//!
//! The benchmark harness regenerating every table and figure of the
//! KeystoneML paper's evaluation (see `DESIGN.md` for the experiment index
//! and `EXPERIMENTS.md` for paper-vs-measured results).
//!
//! Each `benches/*.rs` target is a standalone report generator (Criterion's
//! statistical harness is reserved for the micro benches): running
//! `cargo bench` prints the paper-style rows and writes machine-readable
//! JSON under `target/keystone-experiments/`.

use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

use serde::Serialize;

/// Times a closure once (macro-benchmark style; end-to-end experiments are
/// far too large for statistical repetition).
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Formats a row of fixed-width cells.
pub fn row(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| format!("{:>12}", c))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Prints a titled table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {} ===", title);
    println!(
        "{}",
        row(&header.iter().map(|h| h.to_string()).collect::<Vec<_>>())
    );
    for r in rows {
        println!("{}", row(r));
    }
}

/// Writes an experiment result as JSON under `target/keystone-experiments/`.
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let dir = PathBuf::from(
        std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string()),
    )
    .join("keystone-experiments");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = f.write_all(
            serde_json::to_string_pretty(value)
                .unwrap_or_default()
                .as_bytes(),
        );
        println!("[saved {}]", path.display());
    }
}

/// Returns true when the caller should run a reduced-size experiment
/// (set `KEYSTONE_BENCH_FULL=1` for the full-size sweep).
pub fn quick_mode() -> bool {
    std::env::var("KEYSTONE_BENCH_FULL").map_or(true, |v| v != "1")
}

/// Formats seconds with ms precision.
pub fn secs(s: f64) -> String {
    if s < 1.0 {
        format!("{:.0}ms", s * 1e3)
    } else if s < 100.0 {
        format!("{:.2}s", s)
    } else {
        format!("{:.0}s", s)
    }
}

/// Planted least-squares problems shared by the solver benches.
pub mod problems {
    use keystone_dataflow::collection::DistCollection;
    use keystone_linalg::rng::XorShiftRng;
    use keystone_linalg::sparse::SparseVector;

    /// Dense planted problem: `y = X w* + noise`, `k` targets.
    pub fn dense(
        n: usize,
        d: usize,
        k: usize,
        seed: u64,
    ) -> (DistCollection<Vec<f64>>, DistCollection<Vec<f64>>) {
        let mut rng = XorShiftRng::new(seed);
        let wstar: Vec<Vec<f64>> = (0..k)
            .map(|_| (0..d).map(|_| rng.next_gaussian() / (d as f64).sqrt()).collect())
            .collect();
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let x: Vec<f64> = (0..d).map(|_| rng.next_gaussian()).collect();
            let y: Vec<f64> = wstar
                .iter()
                .map(|w| {
                    x.iter().zip(w).map(|(a, b)| a * b).sum::<f64>()
                        + 0.01 * rng.next_gaussian()
                })
                .collect();
            rows.push(x);
            labels.push(y);
        }
        (
            DistCollection::from_vec(rows, 8),
            DistCollection::from_vec(labels, 8),
        )
    }

    /// Sparse planted problem (text-like): `nnz` active features per row.
    pub fn sparse(
        n: usize,
        d: usize,
        nnz: usize,
        k: usize,
        seed: u64,
    ) -> (DistCollection<SparseVector>, DistCollection<Vec<f64>>) {
        let mut rng = XorShiftRng::new(seed);
        // Planted weights on a small subset of features per target.
        let wstar: Vec<Vec<(usize, f64)>> = (0..k)
            .map(|_| {
                (0..64.min(d))
                    .map(|_| (rng.next_usize(d), rng.next_gaussian()))
                    .collect()
            })
            .collect();
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let pairs: Vec<(u32, f64)> = (0..nnz)
                .map(|_| (rng.next_usize(d) as u32, 1.0))
                .collect();
            let x = SparseVector::from_pairs(d, pairs);
            let y: Vec<f64> = wstar
                .iter()
                .map(|w| {
                    w.iter().map(|&(j, wv)| wv * x.get(j)).sum::<f64>()
                        + 0.01 * rng.next_gaussian()
                })
                .collect();
            rows.push(x);
            labels.push(y);
        }
        (
            DistCollection::from_vec(rows, 8),
            DistCollection::from_vec(labels, 8),
        )
    }

    /// Mean squared residual of a fitted model on a problem.
    pub fn mse<F: keystone_solvers::Features>(
        model: &dyn keystone_core::operator::Transformer<F, Vec<f64>>,
        data: &DistCollection<F>,
        labels: &DistCollection<Vec<f64>>,
    ) -> f64 {
        let n = data.count().max(1) as f64;
        let se: f64 = data
            .iter()
            .zip(labels.iter())
            .map(|(x, y)| {
                let p = model.apply(x);
                p.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum::<f64>()
            })
            .sum();
        se / n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_formatting() {
        let r = row(&["a".into(), "b".into()]);
        assert!(r.contains('a') && r.contains('b'));
        assert!(r.len() >= 24);
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(secs(0.5), "500ms");
        assert_eq!(secs(2.5), "2.50s");
        assert_eq!(secs(120.0), "120s");
    }

    #[test]
    fn time_once_returns_value() {
        let (v, t) = time_once(|| 7);
        assert_eq!(v, 7);
        assert!(t >= 0.0);
    }
}
