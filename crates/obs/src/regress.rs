//! Regression harness: diff two [`RunArtifact`]s, snapshot the virtual
//! metrics that matter into `BENCH_*.json` files, and gate CI on them.
//!
//! Everything in this module compares **virtual** quantities (simulated
//! seconds, span counts, hit ratios, virtual latency percentiles) — the
//! numbers that are byte-identical across runs of the same binary — so a
//! committed baseline stays meaningful on any machine. Wall time never
//! enters a snapshot.
//!
//! Direction is inferred from the metric name: `*_secs`, `*_bytes`,
//! `*_spans`, `*p50*`, `*p99*` regress when they go *up*;
//! `*hit_ratio*`, `*qps*`, `*throughput*` regress when they go *down*.
//! Unknown names are change-detected in both directions.

use std::collections::BTreeMap;

use keystone_dataflow::metrics::microjson;

use crate::artifact::RunArtifact;
use crate::json::JVal;

/// Structured difference between two artifacts of the same pipeline.
#[derive(Debug, Clone, Default)]
pub struct ArtifactDiff {
    /// Per-stage simulated-seconds delta (new − base), keyed by stage
    /// prefix; stages present in only one side diff against zero.
    pub stage_sim_delta: BTreeMap<String, f64>,
    /// Total simulated seconds, base and new.
    pub sim_total_secs: (f64, f64),
    /// Task-span counts, base and new.
    pub span_count: (u64, u64),
    /// Cache hit ratio, base and new.
    pub cache_hit_ratio: (f64, f64),
    /// Serve p50 latency when both sides carry a serve section.
    pub serve_p50: Option<(f64, f64)>,
    /// Serve p99 latency when both sides carry a serve section.
    pub serve_p99: Option<(f64, f64)>,
}

impl ArtifactDiff {
    /// Diffs `new` against `base`.
    pub fn between(base: &RunArtifact, new: &RunArtifact) -> ArtifactDiff {
        let mut stages: BTreeMap<String, (f64, f64)> = BTreeMap::new();
        for (stage, secs) in &base.sim_by_stage {
            stages.entry(stage.clone()).or_default().0 += *secs;
        }
        for (stage, secs) in &new.sim_by_stage {
            stages.entry(stage.clone()).or_default().1 += *secs;
        }
        ArtifactDiff {
            stage_sim_delta: stages.into_iter().map(|(k, (b, n))| (k, n - b)).collect(),
            sim_total_secs: (base.sim_total_secs, new.sim_total_secs),
            span_count: (base.spans.len() as u64, new.spans.len() as u64),
            cache_hit_ratio: (
                base.cache_hit_ratio().unwrap_or(0.0),
                new.cache_hit_ratio().unwrap_or(0.0),
            ),
            serve_p50: match (&base.serve, &new.serve) {
                (Some(b), Some(n)) => Some((b.p50_latency_secs, n.p50_latency_secs)),
                _ => None,
            },
            serve_p99: match (&base.serve, &new.serve) {
                (Some(b), Some(n)) => Some((b.p99_latency_secs, n.p99_latency_secs)),
                _ => None,
            },
        }
    }

    /// Human-readable rendering, sorted by |delta| within each section.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "sim total: {:.4}s -> {:.4}s ({:+.4}s)\n",
            self.sim_total_secs.0,
            self.sim_total_secs.1,
            self.sim_total_secs.1 - self.sim_total_secs.0
        ));
        out.push_str(&format!(
            "spans:     {} -> {}\n",
            self.span_count.0, self.span_count.1
        ));
        out.push_str(&format!(
            "hit ratio: {:.3} -> {:.3}\n",
            self.cache_hit_ratio.0, self.cache_hit_ratio.1
        ));
        if let Some((b, n)) = self.serve_p50 {
            out.push_str(&format!("serve p50: {b:.6}s -> {n:.6}s\n"));
        }
        if let Some((b, n)) = self.serve_p99 {
            out.push_str(&format!("serve p99: {b:.6}s -> {n:.6}s\n"));
        }
        let mut stages: Vec<(&String, &f64)> = self.stage_sim_delta.iter().collect();
        stages.sort_by(|a, b| {
            b.1.abs()
                .partial_cmp(&a.1.abs())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(b.0))
        });
        for (stage, delta) in stages {
            if delta.abs() > 1e-12 {
                out.push_str(&format!("  stage {stage}: {delta:+.4}s\n"));
            }
        }
        out
    }
}

/// A named bag of scalar metrics — the unit the CI gate compares. The
/// on-disk form is a `BENCH_<name>.json` file.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSnapshot {
    /// Snapshot name (e.g. `fusion`, `serve`).
    pub name: String,
    /// Metric name → value, sorted for deterministic serialization.
    pub metrics: BTreeMap<String, f64>,
}

impl BenchSnapshot {
    /// An empty snapshot.
    pub fn new(name: &str) -> BenchSnapshot {
        BenchSnapshot {
            name: name.to_string(),
            metrics: BTreeMap::new(),
        }
    }

    /// Adds (or overwrites) one metric.
    pub fn set(&mut self, metric: &str, value: f64) -> &mut Self {
        self.metrics.insert(metric.to_string(), value);
        self
    }

    /// Extracts the gateable virtual metrics from an artifact.
    pub fn from_artifact(name: &str, artifact: &RunArtifact) -> BenchSnapshot {
        let mut snap = BenchSnapshot::new(name);
        snap.set("sim_total_secs", artifact.sim_total_secs);
        snap.set("span_count_spans", artifact.spans.len() as f64);
        if let Some(ratio) = artifact.cache_hit_ratio() {
            snap.set("cache_hit_ratio", ratio);
        }
        for (stage, secs) in &artifact.sim_by_stage {
            snap.set(&format!("stage.{stage}_secs"), *secs);
        }
        if let Some(serve) = &artifact.serve {
            snap.set("serve.p50_latency_secs", serve.p50_latency_secs);
            snap.set("serve.p99_latency_secs", serve.p99_latency_secs);
            snap.set("serve.makespan_secs", serve.makespan_secs);
            snap.set("serve.admitted", serve.admitted as f64);
        }
        snap
    }

    /// Deterministic JSON form.
    pub fn to_json(&self) -> String {
        JVal::obj(vec![
            ("name", JVal::str(&self.name)),
            (
                "metrics",
                JVal::Obj(
                    self.metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), JVal::Num(*v)))
                        .collect(),
                ),
            ),
        ])
        .render()
    }

    /// Parses a snapshot written by [`BenchSnapshot::to_json`].
    pub fn from_json(json: &str) -> Result<BenchSnapshot, String> {
        let doc = microjson::parse(json).map_err(|e| format!("snapshot parse error: {e}"))?;
        let name = doc
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or("snapshot missing `name`")?
            .to_string();
        let mut metrics = BTreeMap::new();
        if let Some(microjson::Value::Obj(pairs)) = doc.get("metrics") {
            for (k, v) in pairs {
                let value = v
                    .as_f64()
                    .ok_or_else(|| format!("metric `{k}` is not a number"))?;
                metrics.insert(k.clone(), value);
            }
        } else {
            return Err("snapshot missing `metrics` object".to_string());
        }
        Ok(BenchSnapshot { name, metrics })
    }
}

/// Which way a metric is allowed to move without tripping the gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Going up beyond tolerance is a regression (`*_secs`, `*_spans`, …).
    LowerIsBetter,
    /// Going down beyond tolerance is a regression (`*hit_ratio*`, …).
    HigherIsBetter,
    /// Any move beyond tolerance is a regression (unknown names).
    Exact,
}

/// Infers a metric's direction from its name.
pub fn direction_of(metric: &str) -> Direction {
    let m = metric.to_ascii_lowercase();
    if m.contains("hit_ratio") || m.contains("qps") || m.contains("throughput") {
        Direction::HigherIsBetter
    } else if m.ends_with("_secs")
        || m.ends_with("_bytes")
        || m.ends_with("_spans")
        || m.contains("p50")
        || m.contains("p99")
    {
        Direction::LowerIsBetter
    } else {
        Direction::Exact
    }
}

/// One gate violation.
#[derive(Debug, Clone)]
pub struct Regression {
    /// The metric that moved.
    pub metric: String,
    /// Baseline value.
    pub base: f64,
    /// Current value.
    pub new: f64,
    /// Relative change, signed ((new − base) / max(|base|, ε)).
    pub rel_change: f64,
}

/// Result of a gate check.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// Metrics that regressed beyond tolerance.
    pub regressions: Vec<Regression>,
    /// Metrics that moved beyond tolerance in the *good* direction.
    pub improvements: Vec<Regression>,
    /// Metrics present in only one snapshot (name, which side has it).
    pub missing: Vec<(String, &'static str)>,
}

impl GateReport {
    /// True when no metric regressed and none went missing.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }

    /// Human-readable verdict.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for r in &self.regressions {
            out.push_str(&format!(
                "REGRESSION {}: {} -> {} ({:+.1}%)\n",
                r.metric,
                r.base,
                r.new,
                r.rel_change * 100.0
            ));
        }
        for (metric, side) in &self.missing {
            out.push_str(&format!("MISSING    {metric}: only in {side} snapshot\n"));
        }
        for r in &self.improvements {
            out.push_str(&format!(
                "improved   {}: {} -> {} ({:+.1}%)\n",
                r.metric,
                r.base,
                r.new,
                r.rel_change * 100.0
            ));
        }
        if self.passed() {
            out.push_str("gate: PASS\n");
        } else {
            out.push_str(&format!(
                "gate: FAIL ({} regression(s), {} missing)\n",
                self.regressions.len(),
                self.missing.len()
            ));
        }
        out
    }
}

/// The CI perf-regression gate: compares a fresh snapshot against a
/// committed baseline with a relative tolerance.
#[derive(Debug, Clone)]
pub struct RegressionGate {
    /// Allowed relative drift before a directional move counts as a
    /// regression (e.g. `0.05` = 5%).
    pub tolerance: f64,
}

impl Default for RegressionGate {
    fn default() -> Self {
        // Virtual quantities are deterministic, so the default tolerance
        // only absorbs intentional-but-tiny cost-model adjustments.
        RegressionGate { tolerance: 0.05 }
    }
}

impl RegressionGate {
    /// A gate with an explicit tolerance.
    pub fn with_tolerance(tolerance: f64) -> RegressionGate {
        RegressionGate { tolerance }
    }

    /// Checks `new` against `base`.
    pub fn check(&self, base: &BenchSnapshot, new: &BenchSnapshot) -> GateReport {
        let mut report = GateReport::default();
        for (metric, &b) in &base.metrics {
            let Some(&n) = new.metrics.get(metric) else {
                report.missing.push((metric.clone(), "baseline"));
                continue;
            };
            let rel = (n - b) / b.abs().max(1e-12);
            if rel.abs() <= self.tolerance {
                continue;
            }
            let entry = Regression {
                metric: metric.clone(),
                base: b,
                new: n,
                rel_change: rel,
            };
            let regressed = match direction_of(metric) {
                Direction::LowerIsBetter => rel > 0.0,
                Direction::HigherIsBetter => rel < 0.0,
                Direction::Exact => true,
            };
            if regressed {
                report.regressions.push(entry);
            } else {
                report.improvements.push(entry);
            }
        }
        for metric in new.metrics.keys() {
            if !base.metrics.contains_key(metric) {
                report.missing.push((metric.clone(), "current"));
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_snapshot() -> BenchSnapshot {
        let mut s = BenchSnapshot::new("fusion");
        s.set("sim_total_secs", 10.0)
            .set("span_count_spans", 64.0)
            .set("cache_hit_ratio", 0.8)
            .set("stage.fit_secs", 8.0);
        s
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let s = base_snapshot();
        let parsed = BenchSnapshot::from_json(&s.to_json()).expect("round trip");
        assert_eq!(parsed, s);
        // Serialization itself is deterministic.
        assert_eq!(s.to_json(), parsed.to_json());
    }

    #[test]
    fn direction_heuristics_follow_the_suffix() {
        assert_eq!(direction_of("sim_total_secs"), Direction::LowerIsBetter);
        assert_eq!(direction_of("span_count_spans"), Direction::LowerIsBetter);
        assert_eq!(
            direction_of("serve.p99_latency_secs"),
            Direction::LowerIsBetter
        );
        assert_eq!(direction_of("cache_hit_ratio"), Direction::HigherIsBetter);
        assert_eq!(direction_of("loadgen_qps"), Direction::HigherIsBetter);
        assert_eq!(direction_of("serve.admitted"), Direction::Exact);
    }

    #[test]
    fn gate_fails_on_slowdown_and_passes_within_tolerance() {
        let base = base_snapshot();
        let mut slow = base.clone();
        slow.set("sim_total_secs", 13.0); // +30%
        let gate = RegressionGate::default();
        let report = gate.check(&base, &slow);
        assert!(!report.passed(), "{}", report.render_text());
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].metric, "sim_total_secs");

        let mut ok = base.clone();
        ok.set("sim_total_secs", 10.2); // +2% < 5% tolerance
        assert!(gate.check(&base, &ok).passed());
    }

    #[test]
    fn gate_treats_speedup_as_improvement_and_hit_ratio_drop_as_regression() {
        let base = base_snapshot();
        let mut new = base.clone();
        new.set("sim_total_secs", 7.0); // faster: improvement
        new.set("cache_hit_ratio", 0.4); // halved: regression
        let report = RegressionGate::default().check(&base, &new);
        assert_eq!(report.improvements.len(), 1);
        assert_eq!(report.improvements[0].metric, "sim_total_secs");
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].metric, "cache_hit_ratio");
    }

    #[test]
    fn gate_flags_missing_metrics_on_either_side() {
        let base = base_snapshot();
        let mut new = base.clone();
        new.metrics.remove("stage.fit_secs");
        new.set("stage.apply_secs", 1.0);
        let report = RegressionGate::default().check(&base, &new);
        assert!(!report.passed());
        assert_eq!(report.missing.len(), 2);
        let text = report.render_text();
        assert!(text.contains("stage.fit_secs"), "{text}");
        assert!(text.contains("stage.apply_secs"), "{text}");
    }
}
