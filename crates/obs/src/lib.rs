//! # keystone-obs — flight recorder, diagnosis engine, regression gate
//!
//! The observability layer over the KeystoneML reproduction: everything a
//! run already emits (trace events, task spans, metrics, the
//! predicted-vs-actual pipeline report, recovery stats, serve telemetry)
//! is joined into one versioned, self-describing [`RunArtifact`] keyed by
//! plan-node id, then consumed two ways:
//!
//! * [`diagnose`] runs rule-based detectors over the artifact and emits
//!   structured [`Finding`]s — stragglers, cache thrash, unpaid
//!   materialization picks, mispredictions, fusion barriers, linger-bound
//!   serving, recovery overhead — each with severity and the evidence
//!   that triggered it.
//! * [`regress`](crate::regress) diffs two artifacts, snapshots the
//!   gateable virtual metrics into `BENCH_*.json` files, and fails CI
//!   when a committed baseline regresses beyond tolerance.
//!
//! The load-bearing invariant, inherited from the dual-clock design:
//! **virtual quantities are deterministic, wall quantities are not.**
//! Captured in deterministic mode (the default), two identical seeded
//! runs serialize to *byte-identical* JSON — which is what makes a
//! committed `BENCH_*.json` baseline meaningful on any machine, and what
//! lets CI verify an artifact by re-running and comparing bytes.

pub mod artifact;
pub mod diagnose;
pub mod json;
pub mod regress;

pub use artifact::{
    schema_version_of, CaptureOptions, HistogramRow, NodeRow, PlanNode, PlanSection, RunArtifact,
    RunKind, ServeSection, SpanRow, SCHEMA_VERSION,
};
pub use diagnose::{
    diagnose, diagnose_with, replanner_hints, DiagnoseOptions, Diagnosis, Finding, Severity,
};
pub use regress::{
    direction_of, ArtifactDiff, BenchSnapshot, Direction, GateReport, Regression, RegressionGate,
};
