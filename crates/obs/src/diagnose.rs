//! Rule-based diagnosis over a [`RunArtifact`]: structured [`Finding`]s
//! with severity and evidence pointers back into the artifact.
//!
//! Each detector encodes one failure mode the paper's optimizer (or this
//! repo's extensions of it) can exhibit, and every finding carries the
//! numbers that triggered it — a diagnosis is an argument, not a vibe:
//!
//! * **straggler** — a stage whose slowest partition dwarfs the median
//!   (record skew in deterministic captures, busy-time skew otherwise),
//!   the regime where the cost model's "slowest worker" pricing diverges
//!   from uniform-split pricing (§4.1).
//! * **cache-thrash** — a key evicted and then missed again: the budget
//!   is too small for the working set, so the cache converts hits into
//!   recomputes.
//! * **unpaid-materialization** — an Algorithm-1 pick whose output was
//!   never hit: budget spent for zero reuse (§4.3).
//! * **misprediction** — the largest predicted-vs-actual runtime errors,
//!   the signal adaptive re-optimization (ROADMAP item 3) will consume.
//! * **fusion-barrier** — unfused multi-span stages adjacent to fusion
//!   barriers (materialization picks, multi-consumer nodes): where span
//!   count — and per-record dispatch overhead — concentrates.
//! * **serve-linger** — serving latency dominated by batch formation
//!   rather than execution: the linger knob is mis-tuned for the load.
//! * **recovery-overhead** — injected-fault recovery consuming an outsized
//!   share of the simulated clock.

use keystone_core::graph::NodeId;
use keystone_core::trace::TraceEvent;

use crate::artifact::{RunArtifact, RunKind};
use crate::json::JVal;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Worth knowing; no action needed.
    Info,
    /// Costing real time or memory; worth fixing.
    Warning,
    /// Dominating the run; fix first.
    Critical,
}

impl Severity {
    /// Lowercase name (`info`/`warning`/`critical`).
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }
}

/// One detector hit: the rule, where it points, and its evidence.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Detector name (stable identifier, e.g. `straggler`).
    pub rule: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Plan node the finding points at, when node-scoped.
    pub node: Option<NodeId>,
    /// Stage or node label, when available.
    pub label: Option<String>,
    /// One-sentence human-readable statement.
    pub summary: String,
    /// Named quantities that triggered the rule, in evidence order.
    pub evidence: Vec<(&'static str, f64)>,
}

/// The full diagnosis: findings in deterministic order (severity
/// descending, then rule, then node).
#[derive(Debug, Clone, Default)]
pub struct Diagnosis {
    /// All findings.
    pub findings: Vec<Finding>,
}

/// Detector thresholds. The defaults are deliberately opinionated; tests
/// construct artifacts that clear them by a wide margin.
#[derive(Debug, Clone)]
pub struct DiagnoseOptions {
    /// Skew ratio above which a stage is a straggler (`Warning`), and the
    /// multiplier above which it is `Critical` (4× this value).
    pub skew_threshold: f64,
    /// Relative predicted-vs-actual error above which a node counts as
    /// mispredicted.
    pub misprediction_threshold: f64,
    /// How many top mispredictions to report.
    pub misprediction_top: usize,
    /// Recovery share of the simulated clock above which recovery is a
    /// `Warning` (3× this value: `Critical`).
    pub recovery_share_threshold: f64,
}

impl Default for DiagnoseOptions {
    fn default() -> Self {
        DiagnoseOptions {
            skew_threshold: 2.0,
            misprediction_threshold: 0.15,
            misprediction_top: 3,
            recovery_share_threshold: 0.10,
        }
    }
}

/// Runs every detector over the artifact with default thresholds.
pub fn diagnose(artifact: &RunArtifact) -> Diagnosis {
    diagnose_with(artifact, &DiagnoseOptions::default())
}

/// Runs every detector with explicit thresholds.
pub fn diagnose_with(artifact: &RunArtifact, opts: &DiagnoseOptions) -> Diagnosis {
    let mut findings = Vec::new();
    detect_stragglers(artifact, opts, &mut findings);
    detect_cache_thrash(artifact, &mut findings);
    detect_unpaid_materialization(artifact, &mut findings);
    detect_mispredictions(artifact, opts, &mut findings);
    detect_fusion_barriers(artifact, &mut findings);
    detect_serve_linger(artifact, &mut findings);
    detect_recovery_overhead(artifact, opts, &mut findings);
    findings.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then_with(|| a.rule.cmp(b.rule))
            .then_with(|| a.node.cmp(&b.node))
    });
    Diagnosis { findings }
}

/// Converts a diagnosis into [`AdaptiveHints`] for the next fit's
/// what-if re-planner: `misprediction` findings become per-node cost
/// overrides (the observed simulated seconds per execution replaces the
/// profiler's estimate) and `unpaid-materialization` findings flag their
/// picks for eviction at the first revision point. This closes the
/// observe → diagnose → re-plan loop: feed the result to
/// [`PipelineOptions::with_adaptive_hints`].
///
/// [`AdaptiveHints`]: keystone_core::optimizer::AdaptiveHints
/// [`PipelineOptions::with_adaptive_hints`]:
///     keystone_core::optimizer::PipelineOptions::with_adaptive_hints
pub fn replanner_hints(diagnosis: &Diagnosis) -> keystone_core::optimizer::AdaptiveHints {
    let mut hints = keystone_core::optimizer::AdaptiveHints::default();
    for f in &diagnosis.findings {
        let Some(node) = f.node else { continue };
        match f.rule {
            "misprediction" => {
                let observed = f
                    .evidence
                    .iter()
                    .find(|(k, _)| *k == "actual_sim_secs_per_exec")
                    .map(|&(_, v)| v);
                if let Some(secs) = observed {
                    if secs.is_finite() && secs > 0.0 {
                        hints.cost_overrides.push((node, secs));
                    }
                }
            }
            "unpaid-materialization" => hints.unpaid_picks.push(node),
            _ => {}
        }
    }
    hints.cost_overrides.sort_by_key(|o| o.0);
    hints.cost_overrides.dedup_by_key(|&mut (n, _)| n);
    hints.unpaid_picks.sort_unstable();
    hints.unpaid_picks.dedup();
    hints
}

fn detect_stragglers(artifact: &RunArtifact, opts: &DiagnoseOptions, out: &mut Vec<Finding>) {
    for n in &artifact.nodes {
        // Prefer the deterministic record-skew signal; fall back to busy
        // time when records are balanced but time is not (wall captures).
        let (metric, ratio) = match (n.record_skew, n.time_skew) {
            (Some(r), _) if r > opts.skew_threshold => ("record_skew", r),
            (_, Some(t)) if t > opts.skew_threshold => ("time_skew", t),
            _ => continue,
        };
        let severity = if ratio > 4.0 * opts.skew_threshold {
            Severity::Critical
        } else {
            Severity::Warning
        };
        out.push(Finding {
            rule: "straggler",
            severity,
            node: Some(n.node),
            label: Some(n.label.clone()),
            summary: format!(
                "stage `{}` is skewed: slowest partition carries {ratio:.1}x the median \
                 ({metric} over {} partitions) — repartition or salt the hot key",
                n.label, n.partitions
            ),
            evidence: vec![(metric, ratio), ("partitions", n.partitions as f64)],
        });
    }
}

fn detect_cache_thrash(artifact: &RunArtifact, out: &mut Vec<Finding>) {
    // Walk the event stream: a key that misses *after* being evicted was
    // thrashed — the eviction converted a future hit into a recompute.
    let mut evicted: std::collections::HashMap<NodeId, u64> = std::collections::HashMap::new();
    let mut thrash: std::collections::HashMap<NodeId, u64> = std::collections::HashMap::new();
    for e in &artifact.events {
        match &e.event {
            TraceEvent::CacheEvict { node } => {
                *evicted.entry(*node).or_insert(0) += 1;
            }
            TraceEvent::CacheMiss { node } => {
                if let Some(pending) = evicted.get_mut(node) {
                    if *pending > 0 {
                        *pending -= 1;
                        *thrash.entry(*node).or_insert(0) += 1;
                    }
                }
            }
            _ => {}
        }
    }
    let mut nodes: Vec<(NodeId, u64)> = thrash.into_iter().collect();
    nodes.sort_unstable();
    for (node, count) in nodes {
        let label = artifact.node_label(node).to_string();
        out.push(Finding {
            rule: "cache-thrash",
            severity: if count > 2 {
                Severity::Critical
            } else {
                Severity::Warning
            },
            node: Some(node),
            label: Some(label.clone()),
            summary: format!(
                "node `{label}` was evicted then recomputed {count}x — the cache budget \
                 is below the working set; raise it or drop a colder pick"
            ),
            evidence: vec![("evict_then_miss", count as f64)],
        });
    }
}

fn detect_unpaid_materialization(artifact: &RunArtifact, out: &mut Vec<Finding>) {
    // Saving estimates live on the pick events; hits live on the rows.
    let mut est_saving: std::collections::HashMap<NodeId, (f64, u64)> =
        std::collections::HashMap::new();
    for e in &artifact.events {
        if let TraceEvent::MaterializePick {
            node,
            est_saving_secs,
            size_bytes,
            ..
        } = &e.event
        {
            est_saving.insert(*node, (*est_saving_secs, *size_bytes));
        }
    }
    for &node in &artifact.plan.cache_set {
        let hits = artifact.node(node).map(|n| n.cache.hits).unwrap_or(0);
        if hits > 0 {
            continue;
        }
        let label = artifact.node_label(node).to_string();
        let (saving, bytes) = est_saving.get(&node).copied().unwrap_or((0.0, 0));
        out.push(Finding {
            rule: "unpaid-materialization",
            severity: Severity::Warning,
            node: Some(node),
            label: Some(label.clone()),
            summary: format!(
                "materialization pick `{label}` was never hit — {bytes} bytes of budget \
                 spent for zero reuse (estimated saving was {saving:.3}s)"
            ),
            evidence: vec![
                ("cache_hits", 0.0),
                ("est_saving_secs", saving),
                ("size_bytes", bytes as f64),
            ],
        });
    }
}

fn detect_mispredictions(artifact: &RunArtifact, opts: &DiagnoseOptions, out: &mut Vec<Finding>) {
    // Compare the profiler's full-scale estimate against the charged
    // simulated seconds per execution — both virtual, so the signal
    // survives deterministic capture.
    let mut missed: Vec<(f64, &crate::artifact::NodeRow, f64, f64)> = Vec::new();
    for n in &artifact.nodes {
        let (Some(pred), true) = (n.predicted_secs, n.execs > 0) else {
            continue;
        };
        let actual = n.actual_sim_secs / n.execs as f64;
        if actual <= 0.0 {
            continue;
        }
        let err = (pred - actual).abs() / actual.abs().max(1e-9);
        if err > opts.misprediction_threshold {
            missed.push((err, n, pred, actual));
        }
    }
    missed.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    for (err, n, pred, actual) in missed.into_iter().take(opts.misprediction_top) {
        out.push(Finding {
            rule: "misprediction",
            severity: if err > 1.0 {
                Severity::Warning
            } else {
                Severity::Info
            },
            node: Some(n.node),
            label: Some(n.label.clone()),
            summary: format!(
                "profiler predicted {pred:.4}s for `{}` but the run charged {actual:.4}s \
                 per execution ({:.0}% off) — a candidate for re-profiling",
                n.label,
                err * 100.0
            ),
            evidence: vec![
                ("rel_error", err),
                ("predicted_secs", pred),
                ("actual_sim_secs_per_exec", actual),
            ],
        });
    }
}

fn detect_fusion_barriers(artifact: &RunArtifact, out: &mut Vec<Finding>) {
    // Consumers per node: a node feeding >1 consumers is a fusion barrier,
    // as is every materialization pick. Rank barriers by the spans their
    // stage emitted — that's the per-record dispatch overhead fusion
    // could not remove.
    let mut consumers: std::collections::HashMap<NodeId, u64> = std::collections::HashMap::new();
    for n in &artifact.plan.nodes {
        for &i in &n.inputs {
            *consumers.entry(i).or_insert(0) += 1;
        }
    }
    let mut worst: Option<(u64, NodeId, &'static str)> = None;
    for n in &artifact.nodes {
        if n.task_spans == 0 {
            continue;
        }
        let reason = if artifact.plan.cache_set.contains(&n.node) {
            "materialization pick"
        } else if consumers.get(&n.node).copied().unwrap_or(0) > 1 {
            "multi-consumer output"
        } else {
            continue;
        };
        if worst.map(|(s, _, _)| n.task_spans > s).unwrap_or(true) {
            worst = Some((n.task_spans, n.node, reason));
        }
    }
    if let Some((spans, node, reason)) = worst {
        let label = artifact.node_label(node).to_string();
        out.push(Finding {
            rule: "fusion-barrier",
            severity: Severity::Info,
            node: Some(node),
            label: Some(label.clone()),
            summary: format!(
                "fusion barrier at `{label}` ({reason}) emitted {spans} task spans — the \
                 largest unfusable span population in this run"
            ),
            evidence: vec![("task_spans", spans as f64)],
        });
    }
}

fn detect_serve_linger(artifact: &RunArtifact, out: &mut Vec<Finding>) {
    let Some(serve) = &artifact.serve else {
        return;
    };
    if artifact.kind != RunKind::Serve || serve.admitted == 0 {
        return;
    }
    let wait = serve.queue_secs_total + serve.linger_secs_total;
    if wait > serve.execute_secs_total && wait > 0.0 {
        let share = wait / (wait + serve.execute_secs_total);
        out.push(Finding {
            rule: "serve-linger",
            severity: Severity::Warning,
            node: None,
            label: None,
            summary: format!(
                "{:.0}% of total serve latency is waiting (queue + linger), not execution \
                 — lower max_linger or raise max_batch",
                share * 100.0
            ),
            evidence: vec![
                ("wait_secs_total", wait),
                ("execute_secs_total", serve.execute_secs_total),
                ("wait_share", share),
            ],
        });
    }
}

fn detect_recovery_overhead(
    artifact: &RunArtifact,
    opts: &DiagnoseOptions,
    out: &mut Vec<Finding>,
) {
    if artifact.sim_total_secs <= 0.0 || artifact.recovery.recovery_secs <= 0.0 {
        return;
    }
    let share = artifact.recovery.recovery_secs / artifact.sim_total_secs;
    if share <= opts.recovery_share_threshold {
        return;
    }
    out.push(Finding {
        rule: "recovery-overhead",
        severity: if share > 3.0 * opts.recovery_share_threshold {
            Severity::Critical
        } else {
            Severity::Warning
        },
        node: None,
        label: None,
        summary: format!(
            "recovery (retries + speculation) consumed {:.0}% of the simulated clock \
             ({} retries, {} speculative wins, {} cache losses)",
            share * 100.0,
            artifact.recovery.retries,
            artifact.recovery.speculative_wins,
            artifact.recovery.cache_losses
        ),
        evidence: vec![
            ("recovery_share", share),
            ("recovery_secs", artifact.recovery.recovery_secs),
            ("sim_total_secs", artifact.sim_total_secs),
        ],
    });
}

impl Diagnosis {
    /// The most severe finding's severity, if any finding exists.
    pub fn max_severity(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    /// Findings for one rule.
    pub fn rule(&self, rule: &str) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.rule == rule).collect()
    }

    /// Human-readable report, one block per finding.
    pub fn render_text(&self) -> String {
        if self.findings.is_empty() {
            return "diagnosis: no findings — the run looks healthy\n".to_string();
        }
        let mut out = format!("diagnosis: {} finding(s)\n", self.findings.len());
        for f in &self.findings {
            out.push_str(&format!(
                "[{:>8}] {}{}\n",
                f.severity.as_str(),
                f.rule,
                match f.node {
                    Some(n) => format!(" @ node {n}"),
                    None => String::new(),
                }
            ));
            out.push_str(&format!("           {}\n", f.summary));
            for (k, v) in &f.evidence {
                out.push_str(&format!("           · {k} = {v:.4}\n"));
            }
        }
        out
    }

    /// Deterministic JSON rendering (sorted keys).
    pub fn to_json(&self) -> String {
        JVal::obj(vec![(
            "findings",
            JVal::Arr(
                self.findings
                    .iter()
                    .map(|f| {
                        JVal::obj(vec![
                            ("rule", JVal::str(f.rule)),
                            ("severity", JVal::str(f.severity.as_str())),
                            (
                                "node",
                                f.node.map(|n| JVal::UInt(n as u64)).unwrap_or(JVal::Null),
                            ),
                            (
                                "label",
                                f.label.as_deref().map(JVal::str).unwrap_or(JVal::Null),
                            ),
                            ("summary", JVal::str(&f.summary)),
                            (
                                "evidence",
                                JVal::Arr(
                                    f.evidence
                                        .iter()
                                        .map(|(k, v)| {
                                            JVal::obj(vec![
                                                ("name", JVal::str(k)),
                                                ("value", JVal::Num(*v)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        )])
        .render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{
        CaptureOptions, HistogramRow, NodeRow, PlanNode, PlanSection, ServeSection, SCHEMA_VERSION,
    };
    use keystone_core::trace::{CacheCounters, RecoveryStats, TracedEvent};

    /// A hand-built artifact with a straggler, a thrashing cache key, an
    /// unpaid pick, and a fat misprediction — the synthetic run the
    /// acceptance criteria require the engine to diagnose.
    fn synthetic_artifact() -> RunArtifact {
        let plan = PlanSection {
            nodes: (0..4)
                .map(|id| PlanNode {
                    id,
                    label: format!("n{id}"),
                    kind: "transform",
                    inputs: if id == 0 { vec![] } else { vec![id - 1] },
                    fused_members: vec![],
                    cached: id == 2,
                })
                .collect(),
            output: 3,
            cache_set: vec![2],
            choices: vec![],
            eliminated_nodes: 0,
            fused_nodes: 0,
        };
        let row = |node: usize| NodeRow {
            node,
            label: format!("n{node}"),
            predicted_secs: None,
            predicted_out_bytes: None,
            actual_wall_secs: None,
            actual_sim_secs: 1.0,
            actual_out_bytes: 0,
            execs: 1,
            cache: CacheCounters::default(),
            task_spans: 4,
            partitions: 4,
            time_skew: None,
            record_skew: Some(1.0),
            retries: 0,
            speculative_wins: 0,
            recovery_secs: 0.0,
            adapt: None,
        };
        let mut nodes = vec![row(0), row(1), row(2), row(3)];
        // Node 1: 10x record skew — straggler (critical: > 4× threshold).
        nodes[1].record_skew = Some(10.0);
        // Node 2: materialization pick with zero hits — unpaid.
        nodes[2].cache = CacheCounters {
            hits: 0,
            misses: 3,
            admissions: 2,
            evictions: 2,
            rejections: 0,
        };
        // Node 3: predicted 0.1s, charged 1.0s per exec — 90% off.
        nodes[3].predicted_secs = Some(0.1);
        // Event stream: node 2 admitted, evicted, then missed again (twice)
        // — cache thrash.
        let events: Vec<TracedEvent> = [
            TraceEvent::CacheMiss { node: 2 },
            TraceEvent::CacheAdmit { node: 2, bytes: 64 },
            TraceEvent::CacheEvict { node: 2 },
            TraceEvent::CacheMiss { node: 2 },
            TraceEvent::CacheAdmit { node: 2, bytes: 64 },
            TraceEvent::CacheEvict { node: 2 },
            TraceEvent::CacheMiss { node: 2 },
        ]
        .into_iter()
        .enumerate()
        .map(|(i, event)| TracedEvent {
            seq: i as u64,
            event,
        })
        .collect();
        RunArtifact {
            schema_version: SCHEMA_VERSION,
            kind: RunKind::Fit,
            deterministic: true,
            label: "synthetic".into(),
            optimize_secs: None,
            plan,
            nodes,
            sim_entries: vec![],
            sim_total_secs: 4.0,
            sim_by_stage: vec![],
            counters: Default::default(),
            gauges: Default::default(),
            histograms: Vec::<HistogramRow>::new(),
            events,
            spans: vec![],
            recovery: RecoveryStats {
                retries: 3,
                speculative_wins: 0,
                cache_losses: 1,
                recovery_secs: 1.0,
            },
            serve: None,
            adaptation: None,
            tenants: vec![],
        }
    }

    #[test]
    fn replanner_hints_fold_mispredictions_and_unpaid_picks() {
        let d = diagnose(&synthetic_artifact());
        let hints = replanner_hints(&d);
        // Node 3: predicted 0.1s but charged 1.0s/exec → cost override at
        // the observed rate.
        assert_eq!(hints.cost_overrides, vec![(3, 1.0)]);
        // Node 2: the never-hit materialization pick → eviction flag.
        assert_eq!(hints.unpaid_picks, vec![2]);
        // An empty diagnosis yields empty hints.
        let none = replanner_hints(&Diagnosis::default());
        assert!(none.cost_overrides.is_empty() && none.unpaid_picks.is_empty());
    }

    #[test]
    fn synthetic_run_yields_straggler_thrash_and_misprediction() {
        let d = diagnose(&synthetic_artifact());
        let straggler = d.rule("straggler");
        assert_eq!(straggler.len(), 1, "{}", d.render_text());
        assert_eq!(straggler[0].node, Some(1));
        assert_eq!(straggler[0].severity, Severity::Critical);

        let thrash = d.rule("cache-thrash");
        assert_eq!(thrash.len(), 1, "{}", d.render_text());
        assert_eq!(thrash[0].node, Some(2));
        assert_eq!(thrash[0].evidence[0], ("evict_then_miss", 2.0));

        let miss = d.rule("misprediction");
        assert_eq!(miss.len(), 1, "{}", d.render_text());
        assert_eq!(miss[0].node, Some(3));

        let unpaid = d.rule("unpaid-materialization");
        assert_eq!(unpaid.len(), 1);
        assert_eq!(unpaid[0].node, Some(2));

        let recovery = d.rule("recovery-overhead");
        assert_eq!(recovery.len(), 1);
        assert_eq!(recovery[0].severity, Severity::Warning);

        assert_eq!(d.max_severity(), Some(Severity::Critical));
    }

    #[test]
    fn findings_order_is_severity_then_rule_then_node() {
        let d = diagnose(&synthetic_artifact());
        let severities: Vec<Severity> = d.findings.iter().map(|f| f.severity).collect();
        let mut sorted = severities.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(severities, sorted);
        // Same diagnosis twice renders identically (determinism).
        let d2 = diagnose(&synthetic_artifact());
        assert_eq!(d.to_json(), d2.to_json());
        assert_eq!(d.render_text(), d2.render_text());
    }

    #[test]
    fn healthy_artifact_yields_no_findings() {
        let mut a = synthetic_artifact();
        a.nodes = vec![];
        a.plan.cache_set.clear();
        a.events.clear();
        a.recovery = RecoveryStats::default();
        let d = diagnose(&a);
        assert!(d.findings.is_empty(), "{}", d.render_text());
        assert!(d.render_text().contains("healthy"));
        assert_eq!(d.max_severity(), None);
    }

    #[test]
    fn serve_linger_fires_when_waiting_dominates() {
        let mut a = synthetic_artifact();
        a.kind = RunKind::Serve;
        a.nodes = vec![];
        a.plan.cache_set.clear();
        a.events.clear();
        a.recovery = RecoveryStats::default();
        a.serve = Some(ServeSection {
            admitted: 100,
            rejected: 0,
            batches: 10,
            max_queue_depth: 5,
            makespan_secs: 10.0,
            queue_secs_total: 3.0,
            linger_secs_total: 4.0,
            execute_secs_total: 2.0,
            p50_latency_secs: 0.05,
            p99_latency_secs: 0.2,
        });
        let d = diagnose(&a);
        let linger = d.rule("serve-linger");
        assert_eq!(linger.len(), 1, "{}", d.render_text());
        assert!(linger[0].summary.contains("78%"), "{}", linger[0].summary);
    }

    #[test]
    fn render_text_names_every_rule_with_evidence() {
        let d = diagnose(&synthetic_artifact());
        let text = d.render_text();
        for rule in [
            "straggler",
            "cache-thrash",
            "unpaid-materialization",
            "misprediction",
            "recovery-overhead",
        ] {
            assert!(text.contains(rule), "missing {rule} in:\n{text}");
        }
        assert!(text.contains("record_skew"));
        let json = d.to_json();
        assert!(keystone_dataflow::metrics::microjson::parse(&json).is_ok());
        // Silence the unused-import lint for CaptureOptions in this module.
        let _ = CaptureOptions::default();
    }
}
