//! Deterministic JSON document builder.
//!
//! The artifact layer's contract is that two identical runs serialize to
//! *byte-identical* JSON, so this writer leaves nothing to iteration
//! order: object keys are sorted at write time, numbers use the same
//! shortest-roundtrip formatting as the report writer in `keystone-core`
//! (integers keep a `.0` suffix so a value's JSON type never flips
//! between runs), and non-finite floats collapse to `null`. Like the
//! rest of the repo there is no `serde` — the build environment is
//! offline — so documents are built as [`JVal`] trees and rendered by
//! [`JVal::render`].

use std::collections::HashMap;

/// A JSON value under construction.
#[derive(Debug, Clone, PartialEq)]
pub enum JVal {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer, rendered without a decimal point.
    Int(i64),
    /// An unsigned integer, rendered without a decimal point.
    UInt(u64),
    /// A float, rendered shortest-roundtrip with a forced `.0`/exponent
    /// marker; non-finite values render as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array, rendered in order.
    Arr(Vec<JVal>),
    /// An object; keys are sorted (bytewise) at render time regardless of
    /// insertion order.
    Obj(Vec<(String, JVal)>),
}

impl JVal {
    /// Convenience: an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, JVal)>) -> JVal {
        JVal::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience: a string value.
    pub fn str(s: &str) -> JVal {
        JVal::Str(s.to_string())
    }

    /// Convenience: `Num` when present, `Null` otherwise.
    pub fn opt_num(v: Option<f64>) -> JVal {
        v.map(JVal::Num).unwrap_or(JVal::Null)
    }

    /// Renders the document compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(256);
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JVal::Null => out.push_str("null"),
            JVal::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JVal::Int(i) => out.push_str(&i.to_string()),
            JVal::UInt(u) => out.push_str(&u.to_string()),
            JVal::Num(v) => write_f64(out, *v),
            JVal::Str(s) => write_string(out, s),
            JVal::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JVal::Obj(pairs) => {
                let mut sorted: Vec<&(String, JVal)> = pairs.iter().collect();
                sorted.sort_by(|a, b| a.0.cmp(&b.0));
                out.push('{');
                for (i, (k, v)) in sorted.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Shortest-roundtrip float formatting; integral finite values keep a
/// trailing `.0` so they stay floats on re-parse. Mirrors the report
/// writer in `keystone_core::report`.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let formatted = format!("{}", v);
        out.push_str(&formatted);
        if !formatted.contains('.') && !formatted.contains('e') {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

/// JSON string escaping identical to the core report writer's.
pub fn write_string(out: &mut String, v: &str) {
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A string→f64 map as a sorted JSON object.
pub fn num_map(m: &HashMap<String, f64>) -> JVal {
    JVal::Obj(m.iter().map(|(k, v)| (k.clone(), JVal::Num(*v))).collect())
}

/// A string→u64 map as a sorted JSON object.
pub fn uint_map(m: &HashMap<String, u64>) -> JVal {
    JVal::Obj(m.iter().map(|(k, v)| (k.clone(), JVal::UInt(*v))).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use keystone_dataflow::metrics::microjson;

    #[test]
    fn keys_sort_regardless_of_insertion_order() {
        let a = JVal::obj(vec![("b", JVal::Int(2)), ("a", JVal::Int(1))]);
        let b = JVal::obj(vec![("a", JVal::Int(1)), ("b", JVal::Int(2))]);
        assert_eq!(a.render(), "{\"a\":1,\"b\":2}");
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn floats_keep_a_type_marker_and_nan_is_null() {
        assert_eq!(JVal::Num(2.0).render(), "2.0");
        assert_eq!(JVal::Num(f64::NAN).render(), "null");
        assert_eq!(JVal::UInt(2).render(), "2");
        assert_eq!(JVal::Num(1.5e-7).render(), "0.00000015");
    }

    #[test]
    fn rendered_documents_parse_with_microjson() {
        let doc = JVal::obj(vec![
            ("name", JVal::str("a\"b\\c\n")),
            (
                "xs",
                JVal::Arr(vec![JVal::Int(1), JVal::Null, JVal::Bool(true)]),
            ),
            ("nested", JVal::obj(vec![("z", JVal::Num(0.5))])),
        ]);
        let parsed = microjson::parse(&doc.render()).expect("valid JSON");
        assert_eq!(
            parsed.get("name").and_then(|v| v.as_str()),
            Some("a\"b\\c\n")
        );
        assert_eq!(
            parsed
                .get("nested")
                .and_then(|n| n.get("z"))
                .and_then(|v| v.as_f64()),
            Some(0.5)
        );
        assert_eq!(
            parsed.get("xs").and_then(|v| v.as_arr()).map(|a| a.len()),
            Some(3)
        );
    }
}
