//! The [`RunArtifact`]: one self-describing, versioned JSON bundle per
//! fit/apply/serve run.
//!
//! A run today produces telemetry in five places — the tracer's event
//! stream, per-partition [`TaskSpan`]s in the metrics registry, scalar
//! counters/gauges/histograms, the predicted-vs-actual
//! [`PipelineReport`], and (for serving runs) per-request latency splits
//! — all of which evaporate at process exit. The artifact joins them
//! into one bundle keyed by plan-node id, so every datum points back at
//! graph structure, and persists it as deterministic JSON: sorted object
//! keys, shortest-roundtrip floats, and (in the default deterministic
//! capture mode) only *virtual* quantities, so two identical seeded runs
//! serialize byte-identically. The diagnosis engine
//! ([`crate::diagnose`]) and the regression comparator
//! ([`crate::regress`]) both consume this type; ROADMAP item 3
//! (adaptive re-optimization) is its intended third consumer.
//!
//! # Determinism contract
//!
//! With [`CaptureOptions::deterministic`] set (the default):
//!
//! * wall-clock fields are nulled (`NodeEnd.wall_secs`,
//!   `SpeculativeWin.original_secs`, span start/end/worker, skew ratios
//!   and utilization derived from wall time, `FitReport::optimize_secs`);
//! * task spans are sorted by `(stage_id, stage, op_seq, partition, op)`
//!   — their recording order can race under a parallel pool;
//! * straggler evidence comes from *record* skew (per-partition
//!   `items_in`, which is seed-pure) rather than time skew.
//!
//! Byte-identity additionally requires the run itself to be seed-pure:
//! profile with `ProfileOptions::deterministic_timing` (otherwise sim
//! charges for unprofiled nodes fall back to measured wall time) and
//! avoid straggler fault injection (speculative copies are priced at the
//! measured wave median). `examples/diagnose.rs` and the round-trip
//! tests follow exactly this recipe.
//!
//! [`TaskSpan`]: keystone_dataflow::metrics::TaskSpan
//! [`PipelineReport`]: keystone_core::report::PipelineReport

use std::collections::HashMap;

use keystone_core::context::ExecContext;
use keystone_core::graph::{Graph, NodeId, NodeKind};
use keystone_core::pipeline::{ExecutablePlan, FitReport};
use keystone_core::profiler::PipelineProfile;
use keystone_core::report::PipelineReport;
use keystone_core::trace::{CacheCounters, RecoveryStats, TraceEvent, TracedEvent};
use keystone_dataflow::metrics::{microjson, Histogram, TaskSpan};
use keystone_dataflow::simclock::SimEntry;
use keystone_serve::loadgen::percentile;
use keystone_serve::server::ServeOutcome;

use crate::json::JVal;

/// Version stamped into every artifact; bump on any change to the JSON
/// layout. Readers check it via [`schema_version_of`] before trusting
/// field paths.
///
/// History: v1 — initial layout; v2 — adaptive re-optimization: per-node
/// `adapt` flags, the top-level `adaptation` section (fit runs), and the
/// `recalibrate` / `plan_revision` event types; v3 — multi-tenant forest
/// fits: the top-level `tenants` section (per-tenant attribution rows) and
/// the `cross_cse_merge` event type.
pub const SCHEMA_VERSION: u32 = 3;

/// What kind of run the artifact records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunKind {
    /// A `Pipeline::fit` (optimize + estimator execution).
    Fit,
    /// A batch `apply` over a fitted plan.
    Apply,
    /// A micro-batched serving run.
    Serve,
}

impl RunKind {
    fn as_str(&self) -> &'static str {
        match self {
            RunKind::Fit => "fit",
            RunKind::Apply => "apply",
            RunKind::Serve => "serve",
        }
    }
}

/// Capture configuration.
#[derive(Debug, Clone)]
pub struct CaptureOptions {
    /// Virtual-quantities-only mode (see the module docs). Default `true`.
    pub deterministic: bool,
    /// Free-form run label stamped into the artifact (`meta.label`).
    pub label: String,
}

impl Default for CaptureOptions {
    fn default() -> Self {
        CaptureOptions {
            deterministic: true,
            label: String::new(),
        }
    }
}

/// One plan node's structure: the join key everything else points at.
#[derive(Debug, Clone)]
pub struct PlanNode {
    /// Node id in the optimized graph.
    pub id: NodeId,
    /// Node label.
    pub label: String,
    /// Kind name (`source`/`input`/`transform`/`estimate`/`model_apply`).
    pub kind: &'static str,
    /// Input node ids.
    pub inputs: Vec<NodeId>,
    /// Member labels when the node is a whole-stage fused chain.
    pub fused_members: Vec<String>,
    /// Whether the optimizer pinned this node for materialization.
    pub cached: bool,
}

/// The structural section: the optimized DAG plus what the optimizer did.
#[derive(Debug, Clone, Default)]
pub struct PlanSection {
    /// Every node of the optimized graph, in id order.
    pub nodes: Vec<PlanNode>,
    /// The output node id.
    pub output: NodeId,
    /// Materialization picks, ascending node id.
    pub cache_set: Vec<NodeId>,
    /// `(node label, chosen physical operator)` pairs (fit runs only).
    pub choices: Vec<(String, String)>,
    /// Nodes removed by CSE (fit runs only).
    pub eliminated_nodes: usize,
    /// Nodes absorbed into fused chains (fit runs only).
    pub fused_nodes: usize,
}

/// One node's joined telemetry row (the artifact analogue of
/// [`keystone_core::report::NodeReport`], restricted to deterministic
/// fields in deterministic mode).
#[derive(Debug, Clone)]
pub struct NodeRow {
    /// Node id — joins against [`PlanSection::nodes`].
    pub node: NodeId,
    /// Node label.
    pub label: String,
    /// Profiler-predicted seconds for one full-scale execution.
    pub predicted_secs: Option<f64>,
    /// Profiler-predicted output bytes at full scale.
    pub predicted_out_bytes: Option<f64>,
    /// Observed wall seconds (`None` in deterministic mode).
    pub actual_wall_secs: Option<f64>,
    /// Observed simulated-cluster seconds summed over executions.
    pub actual_sim_secs: f64,
    /// Observed output bytes (last execution).
    pub actual_out_bytes: u64,
    /// Completed executions.
    pub execs: u64,
    /// Cache counters for the node's output.
    pub cache: CacheCounters,
    /// Task spans recorded while the node executed.
    pub task_spans: u64,
    /// Distinct partitions those spans covered.
    pub partitions: u64,
    /// Max/median per-partition *busy time* (`None` in deterministic
    /// mode — wall-derived).
    pub time_skew: Option<f64>,
    /// Max/median per-partition *input records* — the deterministic skew
    /// signal (`None` when the node emitted no spans).
    pub record_skew: Option<f64>,
    /// Failed attempts absorbed as retries.
    pub retries: u64,
    /// Straggler partitions beaten by a speculative copy.
    pub speculative_wins: u64,
    /// Simulated seconds of recovery work charged against this node.
    pub recovery_secs: f64,
    /// Adaptive re-optimization flags (`"recalibrated"` / `"promoted"` /
    /// `"evicted"`, `+`-joined), `None` when adaptation never touched the
    /// node.
    pub adapt: Option<String>,
}

/// One per-partition task span row (wall fields optional — nulled in
/// deterministic mode).
#[derive(Debug, Clone)]
pub struct SpanRow {
    /// Stage label.
    pub stage: String,
    /// Executor node id, when the scope owner set one.
    pub stage_id: Option<u64>,
    /// Collection operation (`map`, `aggregate`, ...).
    pub op: &'static str,
    /// Operation sequence number within its scope.
    pub op_seq: u64,
    /// Partition index.
    pub partition: usize,
    /// Worker lane (`None` in deterministic mode — pool assignment races).
    pub worker: Option<usize>,
    /// Items read.
    pub items_in: u64,
    /// Items produced.
    pub items_out: u64,
    /// Bytes read (shallow estimate).
    pub bytes: u64,
    /// Failed attempts absorbed.
    pub retries: u32,
    /// Lost a speculative race.
    pub speculative: bool,
    /// Wall start/end, microseconds (`None` in deterministic mode).
    pub start_us: Option<u64>,
    /// See [`SpanRow::start_us`].
    pub end_us: Option<u64>,
}

/// Serving-run latency splits, payload-free.
#[derive(Debug, Clone, Default)]
pub struct ServeSection {
    /// Admitted requests.
    pub admitted: u64,
    /// Rejected requests.
    pub rejected: u64,
    /// Dispatched waves.
    pub batches: u64,
    /// Largest queue depth observed.
    pub max_queue_depth: u64,
    /// When the last wave finished, virtual seconds.
    pub makespan_secs: f64,
    /// Total seconds requests spent blocked behind the busy executor.
    pub queue_secs_total: f64,
    /// Total seconds requests spent waiting for their batch to dispatch.
    pub linger_secs_total: f64,
    /// Total per-request execution seconds.
    pub execute_secs_total: f64,
    /// Median total virtual latency.
    pub p50_latency_secs: f64,
    /// 99th-percentile total virtual latency.
    pub p99_latency_secs: f64,
}

impl ServeSection {
    /// Summarizes a [`ServeOutcome`], dropping payloads.
    pub fn from_outcome<B>(o: &ServeOutcome<B>) -> ServeSection {
        let totals: Vec<f64> = o.responses.iter().map(|r| r.timing.total_secs()).collect();
        ServeSection {
            admitted: o.responses.len() as u64,
            rejected: o.rejects.len() as u64,
            batches: o.batches.len() as u64,
            max_queue_depth: o.max_queue_depth as u64,
            makespan_secs: o.makespan_secs,
            queue_secs_total: o.responses.iter().map(|r| r.timing.queue_secs).sum(),
            linger_secs_total: o.responses.iter().map(|r| r.timing.batch_secs).sum(),
            execute_secs_total: o.responses.iter().map(|r| r.timing.execute_secs).sum(),
            p50_latency_secs: percentile(&totals, 50.0),
            p99_latency_secs: percentile(&totals, 99.0),
        }
    }
}

/// A named histogram's full state.
#[derive(Debug, Clone)]
pub struct HistogramRow {
    /// Metric name.
    pub name: String,
    /// Bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Bucket counts (last is overflow).
    pub counts: Vec<u64>,
    /// Sum of observations.
    pub sum: f64,
    /// Observation count.
    pub count: u64,
    /// Nearest-rank median (bucket-edge estimate).
    pub p50: Option<f64>,
    /// Nearest-rank p99 (bucket-edge estimate).
    pub p99: Option<f64>,
}

impl HistogramRow {
    fn from(name: &str, h: &Histogram) -> HistogramRow {
        HistogramRow {
            name: name.to_string(),
            bounds: h.bounds().to_vec(),
            counts: h.bucket_counts().to_vec(),
            sum: h.sum(),
            count: h.count(),
            p50: h.p50(),
            p99: h.p99(),
        }
    }
}

/// The flight-recorder bundle: everything one run did, joined by plan
/// node id. See the module docs for the determinism contract.
#[derive(Debug, Clone)]
pub struct RunArtifact {
    /// Schema version ([`SCHEMA_VERSION`] at capture time).
    pub schema_version: u32,
    /// Run kind.
    pub kind: RunKind,
    /// Whether wall quantities were dropped at capture.
    pub deterministic: bool,
    /// Free-form run label.
    pub label: String,
    /// Optimizer wall seconds (`None` in deterministic mode or non-fit
    /// runs).
    pub optimize_secs: Option<f64>,
    /// The structural section.
    pub plan: PlanSection,
    /// Joined per-node telemetry, ascending node id.
    pub nodes: Vec<NodeRow>,
    /// The simulated-clock ledger, in charge order.
    pub sim_entries: Vec<SimEntry>,
    /// Ledger total, seconds.
    pub sim_total_secs: f64,
    /// Ledger grouped by stage prefix, first-seen order.
    pub sim_by_stage: Vec<(String, f64)>,
    /// Counters, sorted by name at serialization.
    pub counters: HashMap<String, u64>,
    /// Gauges, sorted by name at serialization.
    pub gauges: HashMap<String, f64>,
    /// Histograms with full bucket state.
    pub histograms: Vec<HistogramRow>,
    /// The trace event stream, in recording order.
    pub events: Vec<TracedEvent>,
    /// Per-partition task spans (sorted deterministically).
    pub spans: Vec<SpanRow>,
    /// Aggregate recovery statistics.
    pub recovery: RecoveryStats,
    /// Serving latency splits (serve runs only).
    pub serve: Option<ServeSection>,
    /// Adaptive re-optimization summary (fit runs only; `None` elsewhere
    /// and on fits where adaptation was disabled before schema v2).
    pub adaptation: Option<keystone_core::optimizer::AdaptationReport>,
    /// Per-tenant attribution rows when the run was a multi-tenant forest
    /// fit (`fit_forest`); empty for ordinary runs. Schema v3.
    pub tenants: Vec<keystone_core::report::TenantRow>,
}

fn kind_name(kind: &NodeKind) -> &'static str {
    match kind {
        NodeKind::RuntimeInput => "input",
        NodeKind::DataSource(_) => "source",
        NodeKind::Transform(_) => "transform",
        NodeKind::Estimate(_) => "estimate",
        NodeKind::ModelApply => "model_apply",
    }
}

fn plan_section(graph: &Graph, output: NodeId, cache_set: &[NodeId]) -> PlanSection {
    let nodes = graph
        .nodes
        .iter()
        .enumerate()
        .map(|(id, n)| {
            let fused_members = match &n.kind {
                NodeKind::Transform(op) => op.fused_members().unwrap_or_default(),
                _ => Vec::new(),
            };
            PlanNode {
                id,
                label: n.label.clone(),
                kind: kind_name(&n.kind),
                inputs: n.inputs.clone(),
                fused_members,
                cached: cache_set.contains(&id),
            }
        })
        .collect();
    PlanSection {
        nodes,
        output,
        cache_set: cache_set.to_vec(),
        choices: Vec::new(),
        eliminated_nodes: 0,
        fused_nodes: 0,
    }
}

/// Per-stage record skew: max/median of per-partition summed `items_in`,
/// keyed by stage id. This is the deterministic straggler signal — input
/// cardinality per partition is a pure function of the data layout.
fn record_skew_by_node(spans: &[TaskSpan]) -> HashMap<u64, f64> {
    let mut groups: HashMap<u64, HashMap<usize, u64>> = HashMap::new();
    for s in spans {
        if let Some(id) = s.stage_id {
            *groups
                .entry(id)
                .or_default()
                .entry(s.partition)
                .or_insert(0) += s.items_in;
        }
    }
    groups
        .into_iter()
        .map(|(id, parts)| {
            let mut counts: Vec<u64> = parts.values().copied().collect();
            counts.sort_unstable();
            let max = *counts.last().expect("non-empty group") as f64;
            let median = counts[(counts.len() - 1) / 2].max(1) as f64;
            (id, max / median)
        })
        .collect()
}

fn node_rows(report: &PipelineReport, spans: &[TaskSpan], deterministic: bool) -> Vec<NodeRow> {
    let record_skew = record_skew_by_node(spans);
    report
        .nodes
        .iter()
        .map(|n| NodeRow {
            node: n.node,
            label: n.label.clone(),
            predicted_secs: n.predicted_secs,
            predicted_out_bytes: n.predicted_out_bytes,
            actual_wall_secs: if deterministic {
                None
            } else {
                Some(n.actual_wall_secs)
            },
            actual_sim_secs: n.actual_sim_secs,
            actual_out_bytes: n.actual_out_bytes,
            execs: n.execs,
            cache: n.cache,
            task_spans: n.task_spans,
            partitions: n.partitions,
            time_skew: if deterministic { None } else { n.skew_ratio },
            record_skew: record_skew.get(&(n.node as u64)).copied(),
            retries: n.retries,
            speculative_wins: n.speculative_wins,
            recovery_secs: n.recovery_secs,
            adapt: n.adapt.clone(),
        })
        .collect()
}

fn span_rows(spans: Vec<TaskSpan>, deterministic: bool) -> Vec<SpanRow> {
    let mut rows: Vec<SpanRow> = spans
        .into_iter()
        .map(|s| SpanRow {
            stage_id: s.stage_id,
            op_seq: s.op_seq,
            partition: s.partition,
            op: s.op,
            items_in: s.items_in,
            items_out: s.items_out,
            bytes: s.bytes,
            retries: s.retries,
            speculative: s.speculative,
            worker: if deterministic { None } else { Some(s.worker) },
            start_us: if deterministic {
                None
            } else {
                Some(s.start_us)
            },
            end_us: if deterministic { None } else { Some(s.end_us) },
            stage: s.stage,
        })
        .collect();
    // Recording order races under a parallel pool; the artifact orders
    // spans by identity instead.
    rows.sort_by(|a, b| {
        (a.stage_id, &a.stage, a.op_seq, a.partition, a.op).cmp(&(
            b.stage_id,
            &b.stage,
            b.op_seq,
            b.partition,
            b.op,
        ))
    });
    rows
}

impl RunArtifact {
    fn capture_common(
        kind: RunKind,
        plan: PlanSection,
        report: &PipelineReport,
        ctx: &ExecContext,
        opts: &CaptureOptions,
        serve: Option<ServeSection>,
    ) -> RunArtifact {
        let spans = ctx.metrics.spans();
        let nodes = node_rows(report, &spans, opts.deterministic);
        let snapshot = ctx.metrics.snapshot();
        let mut histograms: Vec<HistogramRow> = snapshot
            .histograms
            .iter()
            .map(|(name, h)| HistogramRow::from(name, h))
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        RunArtifact {
            schema_version: SCHEMA_VERSION,
            kind,
            deterministic: opts.deterministic,
            label: opts.label.clone(),
            optimize_secs: None,
            plan,
            nodes,
            sim_entries: ctx.sim.entries(),
            sim_total_secs: ctx.sim.total_seconds(),
            sim_by_stage: ctx.sim.by_stage(),
            counters: snapshot.counters,
            gauges: snapshot.gauges,
            histograms,
            events: ctx.tracer.events(),
            spans: span_rows(spans, opts.deterministic),
            recovery: ctx.tracer.recovery_stats(),
            serve,
            adaptation: None,
            tenants: report.tenants.clone(),
        }
    }

    /// Captures a fit run: the [`FitReport`]'s optimizer decisions and
    /// predicted-vs-actual join, plus everything on the context.
    pub fn capture_fit(
        report: &FitReport,
        plan: &ExecutablePlan,
        ctx: &ExecContext,
        opts: &CaptureOptions,
    ) -> RunArtifact {
        let mut cache_set: Vec<NodeId> = report.cache_set.iter().copied().collect();
        cache_set.sort_unstable();
        let mut section = plan_section(plan.graph(), plan.output_node(), &cache_set);
        section.choices = report.choices.clone();
        section.eliminated_nodes = report.eliminated_nodes;
        section.fused_nodes = report.fused_nodes;
        let mut artifact = Self::capture_common(
            RunKind::Fit,
            section,
            &report.observability,
            ctx,
            opts,
            None,
        );
        if !opts.deterministic {
            artifact.optimize_secs = Some(report.optimize_secs);
        }
        artifact.adaptation = Some(report.adaptation.clone());
        artifact
    }

    /// Captures an apply run over a fitted plan: rebuilds the
    /// predicted-vs-actual join from the plan's stored profiles against
    /// the context's tracer/metrics.
    pub fn capture_apply(
        plan: &ExecutablePlan,
        ctx: &ExecContext,
        opts: &CaptureOptions,
    ) -> RunArtifact {
        let profile = PipelineProfile {
            nodes: plan.profiles().clone(),
            choices: Vec::new(),
        };
        let report = PipelineReport::build_with_metrics(
            plan.graph(),
            &profile,
            &ctx.tracer,
            Some(&ctx.metrics),
        );
        let section = plan_section(plan.graph(), plan.output_node(), &[]);
        Self::capture_common(RunKind::Apply, section, &report, ctx, opts, None)
    }

    /// Captures a serving run: like [`RunArtifact::capture_apply`] plus
    /// the serving latency section.
    pub fn capture_serve(
        plan: &ExecutablePlan,
        serve: ServeSection,
        ctx: &ExecContext,
        opts: &CaptureOptions,
    ) -> RunArtifact {
        let profile = PipelineProfile {
            nodes: plan.profiles().clone(),
            choices: Vec::new(),
        };
        let report = PipelineReport::build_with_metrics(
            plan.graph(),
            &profile,
            &ctx.tracer,
            Some(&ctx.metrics),
        );
        let section = plan_section(plan.graph(), plan.output_node(), &[]);
        Self::capture_common(RunKind::Serve, section, &report, ctx, opts, Some(serve))
    }

    /// The cache hit ratio over all nodes (`hits / (hits + misses)`),
    /// `None` when there were no lookups.
    pub fn cache_hit_ratio(&self) -> Option<f64> {
        let hits: u64 = self.nodes.iter().map(|n| n.cache.hits).sum();
        let misses: u64 = self.nodes.iter().map(|n| n.cache.misses).sum();
        if hits + misses == 0 {
            None
        } else {
            Some(hits as f64 / (hits + misses) as f64)
        }
    }

    /// The node row for `id`.
    pub fn node(&self, id: NodeId) -> Option<&NodeRow> {
        self.nodes.iter().find(|n| n.node == id)
    }

    /// The label of plan node `id` (empty when out of range).
    pub fn node_label(&self, id: NodeId) -> &str {
        self.plan
            .nodes
            .get(id)
            .map(|n| n.label.as_str())
            .unwrap_or("")
    }

    /// Serializes the bundle as deterministic JSON (sorted keys,
    /// shortest-roundtrip floats).
    pub fn to_json(&self) -> String {
        self.to_jval().render()
    }

    fn to_jval(&self) -> JVal {
        JVal::obj(vec![
            (
                "meta",
                JVal::obj(vec![
                    ("schema_version", JVal::UInt(self.schema_version as u64)),
                    ("kind", JVal::str(self.kind.as_str())),
                    ("deterministic", JVal::Bool(self.deterministic)),
                    ("label", JVal::str(&self.label)),
                    ("optimize_secs", JVal::opt_num(self.optimize_secs)),
                ]),
            ),
            ("plan", plan_jval(&self.plan)),
            (
                "nodes",
                JVal::Arr(self.nodes.iter().map(node_row_jval).collect()),
            ),
            (
                "sim",
                JVal::obj(vec![
                    ("total_secs", JVal::Num(self.sim_total_secs)),
                    (
                        "by_stage",
                        JVal::Arr(
                            self.sim_by_stage
                                .iter()
                                .map(|(stage, secs)| {
                                    JVal::obj(vec![
                                        ("stage", JVal::str(stage)),
                                        ("secs", JVal::Num(*secs)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "entries",
                        JVal::Arr(
                            self.sim_entries
                                .iter()
                                .map(|e| {
                                    JVal::obj(vec![
                                        ("stage", JVal::str(&e.stage)),
                                        ("exec_secs", JVal::Num(e.exec_secs)),
                                        ("coord_secs", JVal::Num(e.coord_secs)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
            ("counters", crate::json::uint_map(&self.counters)),
            ("gauges", crate::json::num_map(&self.gauges)),
            (
                "histograms",
                JVal::Arr(self.histograms.iter().map(histogram_jval).collect()),
            ),
            (
                "events",
                JVal::Arr(
                    self.events
                        .iter()
                        .map(|e| event_jval(e, self.deterministic))
                        .collect(),
                ),
            ),
            (
                "spans",
                JVal::Arr(self.spans.iter().map(span_jval).collect()),
            ),
            (
                "recovery",
                JVal::obj(vec![
                    ("retries", JVal::UInt(self.recovery.retries)),
                    (
                        "speculative_wins",
                        JVal::UInt(self.recovery.speculative_wins),
                    ),
                    ("cache_losses", JVal::UInt(self.recovery.cache_losses)),
                    ("recovery_secs", JVal::Num(self.recovery.recovery_secs)),
                ]),
            ),
            (
                "serve",
                match &self.serve {
                    Some(s) => serve_jval(s),
                    None => JVal::Null,
                },
            ),
            (
                "adaptation",
                match &self.adaptation {
                    Some(a) => adaptation_jval(a),
                    None => JVal::Null,
                },
            ),
            (
                "tenants",
                JVal::Arr(
                    self.tenants
                        .iter()
                        .map(|t| {
                            JVal::obj(vec![
                                ("tenant", JVal::UInt(t.tenant as u64)),
                                ("output", JVal::UInt(t.output as u64)),
                                (
                                    "fit_roots",
                                    JVal::Arr(
                                        t.fit_roots.iter().map(|&n| JVal::UInt(n as u64)).collect(),
                                    ),
                                ),
                                ("shared_nodes", JVal::UInt(t.shared_nodes as u64)),
                                ("sim_secs", JVal::Num(t.sim_secs)),
                                ("solo_secs", JVal::Num(t.solo_secs)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Reads the schema version out of an artifact JSON document without
/// interpreting the rest — the check a reader performs before trusting
/// field paths.
pub fn schema_version_of(json: &str) -> Option<u32> {
    let doc = microjson::parse(json).ok()?;
    doc.get("meta")?
        .get("schema_version")?
        .as_f64()
        .map(|v| v as u32)
}

fn plan_jval(p: &PlanSection) -> JVal {
    JVal::obj(vec![
        (
            "nodes",
            JVal::Arr(
                p.nodes
                    .iter()
                    .map(|n| {
                        JVal::obj(vec![
                            ("id", JVal::UInt(n.id as u64)),
                            ("label", JVal::str(&n.label)),
                            ("kind", JVal::str(n.kind)),
                            (
                                "inputs",
                                JVal::Arr(n.inputs.iter().map(|&i| JVal::UInt(i as u64)).collect()),
                            ),
                            (
                                "fused_members",
                                JVal::Arr(n.fused_members.iter().map(|m| JVal::str(m)).collect()),
                            ),
                            ("cached", JVal::Bool(n.cached)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("output", JVal::UInt(p.output as u64)),
        (
            "cache_set",
            JVal::Arr(p.cache_set.iter().map(|&i| JVal::UInt(i as u64)).collect()),
        ),
        (
            "choices",
            JVal::Arr(
                p.choices
                    .iter()
                    .map(|(label, op)| {
                        JVal::obj(vec![("label", JVal::str(label)), ("chosen", JVal::str(op))])
                    })
                    .collect(),
            ),
        ),
        ("eliminated_nodes", JVal::UInt(p.eliminated_nodes as u64)),
        ("fused_nodes", JVal::UInt(p.fused_nodes as u64)),
    ])
}

fn node_row_jval(n: &NodeRow) -> JVal {
    JVal::obj(vec![
        ("node", JVal::UInt(n.node as u64)),
        ("label", JVal::str(&n.label)),
        ("predicted_secs", JVal::opt_num(n.predicted_secs)),
        ("predicted_out_bytes", JVal::opt_num(n.predicted_out_bytes)),
        ("actual_wall_secs", JVal::opt_num(n.actual_wall_secs)),
        ("actual_sim_secs", JVal::Num(n.actual_sim_secs)),
        ("actual_out_bytes", JVal::UInt(n.actual_out_bytes)),
        ("execs", JVal::UInt(n.execs)),
        (
            "cache",
            JVal::obj(vec![
                ("hits", JVal::UInt(n.cache.hits)),
                ("misses", JVal::UInt(n.cache.misses)),
                ("admissions", JVal::UInt(n.cache.admissions)),
                ("evictions", JVal::UInt(n.cache.evictions)),
                ("rejections", JVal::UInt(n.cache.rejections)),
            ]),
        ),
        ("task_spans", JVal::UInt(n.task_spans)),
        ("partitions", JVal::UInt(n.partitions)),
        ("time_skew", JVal::opt_num(n.time_skew)),
        ("record_skew", JVal::opt_num(n.record_skew)),
        ("retries", JVal::UInt(n.retries)),
        ("speculative_wins", JVal::UInt(n.speculative_wins)),
        ("recovery_secs", JVal::Num(n.recovery_secs)),
        (
            "adapt",
            n.adapt.as_deref().map(JVal::str).unwrap_or(JVal::Null),
        ),
    ])
}

fn adaptation_jval(a: &keystone_core::optimizer::AdaptationReport) -> JVal {
    JVal::obj(vec![
        ("recalibrations", JVal::UInt(a.recalibrations)),
        (
            "revisions",
            JVal::Arr(
                a.revisions
                    .iter()
                    .map(|r| {
                        JVal::obj(vec![
                            ("wave", JVal::UInt(r.wave)),
                            (
                                "promoted",
                                JVal::Arr(
                                    r.promoted.iter().map(|&n| JVal::UInt(n as u64)).collect(),
                                ),
                            ),
                            (
                                "evicted",
                                JVal::Arr(
                                    r.evicted.iter().map(|&n| JVal::UInt(n as u64)).collect(),
                                ),
                            ),
                            ("predicted_saving_secs", JVal::Num(r.predicted_saving_secs)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("decision_secs", JVal::Num(a.decision_secs)),
    ])
}

fn histogram_jval(h: &HistogramRow) -> JVal {
    JVal::obj(vec![
        ("name", JVal::str(&h.name)),
        (
            "bounds",
            JVal::Arr(h.bounds.iter().map(|&b| JVal::Num(b)).collect()),
        ),
        (
            "counts",
            JVal::Arr(h.counts.iter().map(|&c| JVal::UInt(c)).collect()),
        ),
        ("sum", JVal::Num(h.sum)),
        ("count", JVal::UInt(h.count)),
        ("p50", JVal::opt_num(h.p50)),
        ("p99", JVal::opt_num(h.p99)),
    ])
}

fn span_jval(s: &SpanRow) -> JVal {
    JVal::obj(vec![
        ("stage", JVal::str(&s.stage)),
        ("stage_id", s.stage_id.map(JVal::UInt).unwrap_or(JVal::Null)),
        ("op", JVal::str(s.op)),
        ("op_seq", JVal::UInt(s.op_seq)),
        ("partition", JVal::UInt(s.partition as u64)),
        (
            "worker",
            s.worker.map(|w| JVal::UInt(w as u64)).unwrap_or(JVal::Null),
        ),
        ("items_in", JVal::UInt(s.items_in)),
        ("items_out", JVal::UInt(s.items_out)),
        ("bytes", JVal::UInt(s.bytes)),
        ("retries", JVal::UInt(s.retries as u64)),
        ("speculative", JVal::Bool(s.speculative)),
        ("start_us", s.start_us.map(JVal::UInt).unwrap_or(JVal::Null)),
        ("end_us", s.end_us.map(JVal::UInt).unwrap_or(JVal::Null)),
    ])
}

fn serve_jval(s: &ServeSection) -> JVal {
    JVal::obj(vec![
        ("admitted", JVal::UInt(s.admitted)),
        ("rejected", JVal::UInt(s.rejected)),
        ("batches", JVal::UInt(s.batches)),
        ("max_queue_depth", JVal::UInt(s.max_queue_depth)),
        ("makespan_secs", JVal::Num(s.makespan_secs)),
        ("queue_secs_total", JVal::Num(s.queue_secs_total)),
        ("linger_secs_total", JVal::Num(s.linger_secs_total)),
        ("execute_secs_total", JVal::Num(s.execute_secs_total)),
        ("p50_latency_secs", JVal::Num(s.p50_latency_secs)),
        ("p99_latency_secs", JVal::Num(s.p99_latency_secs)),
    ])
}

fn event_jval(e: &TracedEvent, deterministic: bool) -> JVal {
    let mut pairs: Vec<(&str, JVal)> = vec![("seq", JVal::UInt(e.seq))];
    match &e.event {
        TraceEvent::NodeStart { node, label } => {
            pairs.push(("type", JVal::str("node_start")));
            pairs.push(("node", JVal::UInt(*node as u64)));
            pairs.push(("label", JVal::str(label)));
        }
        TraceEvent::NodeEnd {
            node,
            label,
            records,
            out_bytes,
            wall_secs,
            sim_secs,
        } => {
            pairs.push(("type", JVal::str("node_end")));
            pairs.push(("node", JVal::UInt(*node as u64)));
            pairs.push(("label", JVal::str(label)));
            pairs.push(("records", JVal::UInt(*records as u64)));
            pairs.push(("out_bytes", JVal::UInt(*out_bytes)));
            pairs.push((
                "wall_secs",
                if deterministic {
                    JVal::Null
                } else {
                    JVal::Num(*wall_secs)
                },
            ));
            pairs.push(("sim_secs", JVal::Num(*sim_secs)));
        }
        TraceEvent::CacheHit { node } => {
            pairs.push(("type", JVal::str("cache_hit")));
            pairs.push(("node", JVal::UInt(*node as u64)));
        }
        TraceEvent::CacheMiss { node } => {
            pairs.push(("type", JVal::str("cache_miss")));
            pairs.push(("node", JVal::UInt(*node as u64)));
        }
        TraceEvent::CacheAdmit { node, bytes } => {
            pairs.push(("type", JVal::str("cache_admit")));
            pairs.push(("node", JVal::UInt(*node as u64)));
            pairs.push(("bytes", JVal::UInt(*bytes)));
        }
        TraceEvent::CacheEvict { node } => {
            pairs.push(("type", JVal::str("cache_evict")));
            pairs.push(("node", JVal::UInt(*node as u64)));
        }
        TraceEvent::CacheReject { node } => {
            pairs.push(("type", JVal::str("cache_reject")));
            pairs.push(("node", JVal::UInt(*node as u64)));
        }
        TraceEvent::OperatorChoice {
            node,
            label,
            chosen,
            candidates,
        } => {
            pairs.push(("type", JVal::str("operator_choice")));
            pairs.push(("node", JVal::UInt(*node as u64)));
            pairs.push(("label", JVal::str(label)));
            pairs.push(("chosen", JVal::str(chosen)));
            pairs.push((
                "candidates",
                JVal::Arr(
                    candidates
                        .iter()
                        .map(|c| {
                            JVal::obj(vec![
                                ("name", JVal::str(&c.name)),
                                ("est_secs", JVal::Num(c.est_secs)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        TraceEvent::CseMerge {
            kept,
            label,
            duplicates,
        } => {
            pairs.push(("type", JVal::str("cse_merge")));
            pairs.push(("node", JVal::UInt(*kept as u64)));
            pairs.push(("label", JVal::str(label)));
            pairs.push(("duplicates", JVal::UInt(*duplicates as u64)));
        }
        TraceEvent::MaterializePick {
            node,
            label,
            est_saving_secs,
            size_bytes,
        } => {
            pairs.push(("type", JVal::str("materialize_pick")));
            pairs.push(("node", JVal::UInt(*node as u64)));
            pairs.push(("label", JVal::str(label)));
            pairs.push(("est_saving_secs", JVal::Num(*est_saving_secs)));
            pairs.push(("size_bytes", JVal::UInt(*size_bytes)));
        }
        TraceEvent::TaskRetry {
            node,
            partition,
            attempt,
            backoff_secs,
        } => {
            pairs.push(("type", JVal::str("task_retry")));
            pairs.push(("node", JVal::UInt(*node as u64)));
            pairs.push(("partition", JVal::UInt(*partition as u64)));
            pairs.push(("attempt", JVal::UInt(*attempt as u64)));
            pairs.push(("backoff_secs", JVal::Num(*backoff_secs)));
        }
        TraceEvent::SpeculativeWin {
            node,
            partition,
            original_secs,
            copy_secs,
        } => {
            pairs.push(("type", JVal::str("speculative_win")));
            pairs.push(("node", JVal::UInt(*node as u64)));
            pairs.push(("partition", JVal::UInt(*partition as u64)));
            pairs.push((
                "original_secs",
                if deterministic {
                    JVal::Null
                } else {
                    JVal::Num(*original_secs)
                },
            ));
            pairs.push(("copy_secs", JVal::Num(*copy_secs)));
        }
        TraceEvent::CacheLost { node } => {
            pairs.push(("type", JVal::str("cache_lost")));
            pairs.push(("node", JVal::UInt(*node as u64)));
        }
        TraceEvent::FusionMerge {
            node,
            label,
            members,
        } => {
            pairs.push(("type", JVal::str("fusion_merge")));
            pairs.push(("node", JVal::UInt(*node as u64)));
            pairs.push(("label", JVal::str(label)));
            pairs.push((
                "members",
                JVal::Arr(members.iter().map(|m| JVal::str(m)).collect()),
            ));
        }
        TraceEvent::ServeBatch {
            batch,
            size,
            dispatch_secs,
            linger_secs,
            execute_secs,
        } => {
            pairs.push(("type", JVal::str("serve_batch")));
            pairs.push(("batch", JVal::UInt(*batch)));
            pairs.push(("size", JVal::UInt(*size as u64)));
            pairs.push(("dispatch_secs", JVal::Num(*dispatch_secs)));
            pairs.push(("linger_secs", JVal::Num(*linger_secs)));
            pairs.push(("execute_secs", JVal::Num(*execute_secs)));
        }
        TraceEvent::ServeReject {
            request,
            at_secs,
            queue_depth,
        } => {
            pairs.push(("type", JVal::str("serve_reject")));
            pairs.push(("request", JVal::UInt(*request)));
            pairs.push(("at_secs", JVal::Num(*at_secs)));
            pairs.push(("queue_depth", JVal::UInt(*queue_depth as u64)));
        }
        TraceEvent::Recalibrate {
            node,
            label,
            observed_requests,
            predicted_requests,
        } => {
            pairs.push(("type", JVal::str("recalibrate")));
            pairs.push(("node", JVal::UInt(*node as u64)));
            pairs.push(("label", JVal::str(label)));
            pairs.push(("observed_requests", JVal::UInt(*observed_requests)));
            pairs.push(("predicted_requests", JVal::Num(*predicted_requests)));
        }
        TraceEvent::PlanRevision {
            wave,
            promoted,
            evicted,
            predicted_saving_secs,
        } => {
            pairs.push(("type", JVal::str("plan_revision")));
            pairs.push(("wave", JVal::UInt(*wave)));
            pairs.push((
                "promoted",
                JVal::Arr(promoted.iter().map(|&n| JVal::UInt(n as u64)).collect()),
            ));
            pairs.push((
                "evicted",
                JVal::Arr(evicted.iter().map(|&n| JVal::UInt(n as u64)).collect()),
            ));
            pairs.push(("predicted_saving_secs", JVal::Num(*predicted_saving_secs)));
        }
        TraceEvent::CrossCseMerge {
            node,
            label,
            tenants,
            signature,
        } => {
            pairs.push(("type", JVal::str("cross_cse_merge")));
            pairs.push(("node", JVal::UInt(*node as u64)));
            pairs.push(("label", JVal::str(label)));
            pairs.push(("tenants", JVal::UInt(*tenants as u64)));
            pairs.push(("signature", JVal::UInt(*signature)));
        }
    }
    JVal::obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use keystone_core::trace::Tracer;

    fn empty_report() -> PipelineReport {
        PipelineReport::default()
    }

    #[test]
    fn artifact_json_has_meta_and_parses() {
        let ctx = ExecContext::default_cluster();
        ctx.sim.charge_seconds("stage:a", 1.0, 0.5);
        ctx.metrics.inc_counter("c", 3);
        ctx.metrics.observe("h", &[1.0, 2.0], 1.5);
        let report = empty_report();
        let artifact = capture_test(&report, &ctx);
        let json = artifact.to_json();
        assert_eq!(schema_version_of(&json), Some(SCHEMA_VERSION));
        let doc = microjson::parse(&json).expect("valid artifact JSON");
        assert_eq!(
            doc.get("meta")
                .and_then(|m| m.get("kind"))
                .and_then(|v| v.as_str()),
            Some("apply")
        );
        assert_eq!(
            doc.get("sim")
                .and_then(|s| s.get("total_secs"))
                .and_then(|v| v.as_f64()),
            Some(1.5)
        );
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("c"))
                .and_then(|v| v.as_f64()),
            Some(3.0)
        );
    }

    fn capture_test(report: &PipelineReport, ctx: &ExecContext) -> RunArtifact {
        RunArtifact::capture_common(
            RunKind::Apply,
            PlanSection::default(),
            report,
            ctx,
            &CaptureOptions::default(),
            None,
        )
    }

    #[test]
    fn deterministic_mode_nulls_wall_fields() {
        let ctx = ExecContext::default_cluster();
        let t: &Tracer = &ctx.tracer;
        t.node_end(0, "x", 10, 80, 1.25, 0.5);
        ctx.metrics.record_span(TaskSpan {
            stage: "x".into(),
            op: "map",
            op_seq: 0,
            stage_id: Some(0),
            partition: 0,
            worker: 1,
            start_us: 10,
            end_us: 20,
            items_in: 5,
            items_out: 5,
            bytes: 40,
            retries: 0,
            speculative: false,
        });
        let artifact = capture_test(&empty_report(), &ctx);
        let json = artifact.to_json();
        assert!(json.contains("\"wall_secs\":null"), "{json}");
        assert!(json.contains("\"start_us\":null"), "{json}");
        assert!(!json.contains("1.25"), "wall leaked: {json}");

        let wall = RunArtifact::capture_common(
            RunKind::Apply,
            PlanSection::default(),
            &empty_report(),
            &ctx,
            &CaptureOptions {
                deterministic: false,
                label: String::new(),
            },
            None,
        );
        let wall_json = wall.to_json();
        assert!(wall_json.contains("\"wall_secs\":1.25"), "{wall_json}");
        assert!(wall_json.contains("\"start_us\":10"), "{wall_json}");
    }

    #[test]
    fn spans_sort_by_identity_not_recording_order() {
        let ctx = ExecContext::default_cluster();
        for partition in [2usize, 0, 1] {
            ctx.metrics.record_span(TaskSpan {
                stage: "s".into(),
                op: "map",
                op_seq: 0,
                stage_id: Some(3),
                partition,
                worker: 0,
                start_us: 0,
                end_us: 1,
                items_in: 1,
                items_out: 1,
                bytes: 8,
                retries: 0,
                speculative: false,
            });
        }
        let artifact = capture_test(&empty_report(), &ctx);
        let parts: Vec<usize> = artifact.spans.iter().map(|s| s.partition).collect();
        assert_eq!(parts, vec![0, 1, 2]);
    }

    #[test]
    fn record_skew_flags_the_fat_partition() {
        let spans: Vec<TaskSpan> = [(0usize, 8u64), (1, 1), (2, 1), (3, 1)]
            .into_iter()
            .map(|(partition, items)| TaskSpan {
                stage: "s".into(),
                op: "map",
                op_seq: 0,
                stage_id: Some(7),
                partition,
                worker: 0,
                start_us: 0,
                end_us: 1,
                items_in: items,
                items_out: items,
                bytes: items * 8,
                retries: 0,
                speculative: false,
            })
            .collect();
        let skew = record_skew_by_node(&spans);
        assert!((skew[&7] - 8.0).abs() < 1e-12);
    }
}
