//! Golden-file test for the [`RunArtifact`] wire format.
//!
//! The artifact JSON is a compatibility surface: the regression gate, the
//! diagnosis CLI flow, and any external tooling parse it. This test fits a
//! small fully-deterministic pipeline, captures it, and compares the JSON
//! byte-for-byte against a checked-in golden file — so any change to the
//! schema (key set, layout, number formatting) is a conscious decision.
//!
//! To regenerate after an intentional format change (and bump
//! [`SCHEMA_VERSION`] if the layout changed shape):
//!
//! ```text
//! GOLDEN_UPDATE=1 cargo test -p keystone-obs --test golden_artifact
//! ```

use keystone_core::context::ExecContext;
use keystone_core::operator::{Estimator, Transformer};
use keystone_core::optimizer::PipelineOptions;
use keystone_core::pipeline::Pipeline;
use keystone_core::profiler::ProfileOptions;
use keystone_dataflow::collection::DistCollection;
use keystone_obs::{schema_version_of, CaptureOptions, RunArtifact, SCHEMA_VERSION};

struct Double;
impl Transformer<f64, f64> for Double {
    fn apply(&self, x: &f64) -> f64 {
        x * 2.0
    }
}

struct MeanShift;
impl Estimator<f64, f64> for MeanShift {
    fn fit(
        &self,
        data: &DistCollection<f64>,
        _ctx: &ExecContext,
    ) -> Box<dyn Transformer<f64, f64>> {
        let n = data.count().max(1) as f64;
        let mu = data.aggregate(0.0, |a, x| a + x, |a, b| a + b) / n;
        struct Shift(f64);
        impl Transformer<f64, f64> for Shift {
            fn apply(&self, x: &f64) -> f64 {
                x - self.0
            }
        }
        Box::new(Shift(mu))
    }
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/run_artifact_fit.json")
}

fn capture() -> RunArtifact {
    let train = DistCollection::from_vec((0..48).map(|i| i as f64).collect(), 2);
    let pipe = Pipeline::<f64, f64>::input()
        .and_then(Double)
        .and_then_est(MeanShift, &train);
    let ctx = ExecContext::default_cluster();
    let opts = PipelineOptions {
        profile: ProfileOptions {
            sizes: vec![8, 16],
            seed: 3,
            select_operators: false,
            deterministic_timing: true,
        },
        ..Default::default()
    };
    let (fitted, report) = pipe.fit(&ctx, &opts);
    RunArtifact::capture_fit(
        &report,
        &fitted.plan(),
        &ctx,
        &CaptureOptions {
            deterministic: true,
            label: "golden".to_string(),
        },
    )
}

#[test]
fn fit_artifact_matches_golden_bytes() {
    let actual = capture().to_json();
    let path = golden_path();
    if std::env::var("GOLDEN_UPDATE").is_ok() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with GOLDEN_UPDATE=1",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "RunArtifact JSON drifted from its golden file. If the change is \
         intentional, bump SCHEMA_VERSION when the layout changed shape and \
         regenerate: GOLDEN_UPDATE=1 cargo test -p keystone-obs --test golden_artifact"
    );
}

#[test]
fn golden_schema_version_matches_the_crate() {
    if std::env::var("GOLDEN_UPDATE").is_ok() {
        return;
    }
    let golden = std::fs::read_to_string(golden_path()).expect("golden present");
    assert_eq!(
        schema_version_of(&golden),
        Some(SCHEMA_VERSION),
        "schema version bumped without regenerating the golden artifact \
         (or vice versa) — regenerate with GOLDEN_UPDATE=1"
    );
}

#[test]
fn golden_is_reparsable_and_self_describing() {
    let golden = if let Ok(s) = std::fs::read_to_string(golden_path()) {
        s
    } else {
        capture().to_json()
    };
    let doc = keystone_dataflow::metrics::microjson::parse(&golden).expect("valid JSON");
    let meta = doc.get("meta").expect("meta section");
    assert_eq!(meta.get("kind").and_then(|v| v.as_str()), Some("fit"));
    for key in [
        "plan",
        "nodes",
        "sim",
        "counters",
        "gauges",
        "histograms",
        "events",
        "spans",
        "recovery",
        "adaptation",
    ] {
        assert!(doc.get(key).is_some(), "missing top-level `{key}`");
    }
}
