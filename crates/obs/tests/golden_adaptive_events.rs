//! Golden-file test for the adaptive trace-event wire format.
//!
//! Schema v2 added the `recalibrate` and `plan_revision` event types and
//! the top-level `adaptation` section. This test runs a deliberately
//! mis-declared two-branch fit that triggers exactly one mid-fit
//! revision, captures the full artifact, and compares it byte-for-byte
//! against a checked-in golden file — pinning the event layout, the
//! per-node `adapt` flags, and the `adaptation` summary all at once.
//!
//! To regenerate after an intentional format change:
//!
//! ```text
//! GOLDEN_UPDATE=1 cargo test -p keystone-obs --test golden_adaptive_events
//! ```

use keystone_core::context::ExecContext;
use keystone_core::operator::{Estimator, Transformer};
use keystone_core::optimizer::PipelineOptions;
use keystone_core::pipeline::{gather, Pipeline};
use keystone_core::profiler::ProfileOptions;
use keystone_dataflow::collection::DistCollection;
use keystone_obs::{CaptureOptions, RunArtifact};

struct WideLift;
impl Transformer<Vec<f64>, Vec<f64>> for WideLift {
    fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
        (0..16)
            .map(|j| x.iter().sum::<f64>() * (j + 1) as f64)
            .collect()
    }
}

struct SkewLift;
impl Transformer<Vec<f64>, Vec<f64>> for SkewLift {
    fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
        (0..16).map(|j| x.iter().sum::<f64>() + j as f64).collect()
    }
}

struct MeanSub(Vec<f64>);
impl Transformer<Vec<f64>, Vec<f64>> for MeanSub {
    fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
        x.iter().zip(&self.0).map(|(v, m)| v - m).collect()
    }
}

fn column_means(data: &DistCollection<Vec<f64>>) -> Vec<f64> {
    let rows = data.collect();
    let n = rows.len().max(1) as f64;
    let dim = rows.first().map(|r| r.len()).unwrap_or(0);
    let mut mu = vec![0.0; dim];
    for r in &rows {
        for (m, v) in mu.iter_mut().zip(r) {
            *m += v / n;
        }
    }
    mu
}

struct EagerSolver;
impl Estimator<Vec<f64>, Vec<f64>> for EagerSolver {
    fn fit(
        &self,
        data: &DistCollection<Vec<f64>>,
        _ctx: &ExecContext,
    ) -> Box<dyn Transformer<Vec<f64>, Vec<f64>>> {
        Box::new(MeanSub(column_means(data)))
    }

    fn weight(&self) -> u32 {
        6
    }
}

struct StubbornSolver;
impl Estimator<Vec<f64>, Vec<f64>> for StubbornSolver {
    fn fit(
        &self,
        data: &DistCollection<Vec<f64>>,
        _ctx: &ExecContext,
    ) -> Box<dyn Transformer<Vec<f64>, Vec<f64>>> {
        Box::new(MeanSub(column_means(data)))
    }

    fn fit_lazy(
        &self,
        data: &dyn Fn() -> DistCollection<Vec<f64>>,
        _ctx: &ExecContext,
    ) -> Box<dyn Transformer<Vec<f64>, Vec<f64>>> {
        let mut mu = Vec::new();
        for _ in 0..5 {
            mu = column_means(&data());
        }
        Box::new(MeanSub(mu))
    }
}

fn capture() -> RunArtifact {
    let train = DistCollection::from_vec(
        (0..48)
            .map(|r| (0..8).map(|c| ((r * 13 + c) % 11) as f64).collect())
            .collect(),
        4,
    );
    let input = Pipeline::<Vec<f64>, Vec<f64>>::input();
    let stale = input.and_then(WideLift).and_then_est(EagerSolver, &train);
    let hot = input
        .and_then(SkewLift)
        .and_then_est(StubbornSolver, &train);
    let pipe = gather(&[stale, hot]);
    let ctx = ExecContext::default_cluster();
    let opts = PipelineOptions {
        profile: ProfileOptions {
            sizes: vec![8, 16],
            seed: 11,
            select_operators: false,
            deterministic_timing: true,
        },
        ..PipelineOptions::full()
    }
    .with_budget(20_000)
    .with_adaptive(true);
    let (fitted, report) = pipe.fit(&ctx, &opts);
    RunArtifact::capture_fit(
        &report,
        &fitted.plan(),
        &ctx,
        &CaptureOptions {
            deterministic: true,
            label: "adaptive-golden".to_string(),
        },
    )
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/adaptive_events.json")
}

#[test]
fn adaptive_fit_artifact_matches_golden_bytes() {
    let artifact = capture();
    let actual = artifact.to_json();
    // The fixture is only useful if it actually adapts.
    assert!(
        actual.contains("\"type\":\"recalibrate\""),
        "no recalibrate event in fixture: {actual}"
    );
    assert!(
        actual.contains("\"type\":\"plan_revision\""),
        "no plan_revision event in fixture: {actual}"
    );
    let path = golden_path();
    if std::env::var("GOLDEN_UPDATE").is_ok() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with GOLDEN_UPDATE=1",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "adaptive artifact drifted from its golden file; if intentional, bump \
         SCHEMA_VERSION when the layout changed shape and regenerate with \
         GOLDEN_UPDATE=1 cargo test -p keystone-obs --test golden_adaptive_events"
    );
}

#[test]
fn golden_adaptation_section_is_parseable() {
    let golden = if let Ok(s) = std::fs::read_to_string(golden_path()) {
        s
    } else {
        capture().to_json()
    };
    let doc = keystone_dataflow::metrics::microjson::parse(&golden).expect("valid JSON");
    let adaptation = doc.get("adaptation").expect("adaptation section");
    assert_eq!(
        adaptation
            .get("recalibrations")
            .and_then(|v| v.as_f64())
            .map(|v| v as u64),
        Some(1)
    );
    let revisions = adaptation
        .get("revisions")
        .and_then(|v| v.as_arr())
        .expect("revisions array");
    assert_eq!(revisions.len(), 1);
    assert!(revisions[0].get("promoted").is_some());
    assert!(revisions[0].get("evicted").is_some());
}
