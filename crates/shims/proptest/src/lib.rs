//! Offline shim for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so this crate provides the
//! subset of proptest's API the workspace uses: the `proptest!` macro with an
//! optional `#![proptest_config(...)]` header, numeric-range and tuple
//! strategies, `proptest::collection::vec`, and the `prop_assert!` family.
//!
//! Unlike real proptest there is no shrinking and no persisted failure seeds:
//! every test draws its cases from a [`TestRng`] seeded by hashing the test's
//! module path and name, so runs are fully deterministic — a failure
//! reproduces on every run with the same case index.

/// Deterministic xorshift64* generator seeded from the test's name.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator by FNV-1a-hashing `name` (e.g.
    /// `module_path!() + "::" + test name`), so every test gets a distinct
    /// but reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: if h == 0 { 0x9e37_79b9_7f4a_7c15 } else { h },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. Mirrors proptest's `Strategy` in the only capacity the
/// shim needs: producing one value per test case from a deterministic RNG.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_unit() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.next_unit() as f32) * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy producing `Vec`s of `element` values with a length drawn
    /// from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Builds a [`VecStrategy`]; mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration; only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that re-runs the body for `config.cases` generated
/// inputs from a deterministic per-test RNG.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property body (panics on failure; the shim
/// has no error-accumulation machinery).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Drop-in for `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x::y");
        let mut b = TestRng::from_name("x::y");
        let mut c = TestRng::from_name("x::z");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn int_range_stays_in_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..1000 {
            let v = (-5i64..7).generate(&mut rng);
            assert!((-5..7).contains(&v));
            let u = (3usize..16).generate(&mut rng);
            assert!((3..16).contains(&u));
        }
    }

    #[test]
    fn f64_range_stays_in_bounds() {
        let mut rng = TestRng::from_name("fbounds");
        for _ in 0..1000 {
            let v = (-5.0f64..5.0).generate(&mut rng);
            assert!((-5.0..5.0).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::from_name("vecs");
        for _ in 0..200 {
            let v = crate::collection::vec(0u32..32, 1..9).generate(&mut rng);
            assert!((1..9).contains(&v.len()));
            assert!(v.iter().all(|x| *x < 32));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: config form, multiple args, trailing comma.
        fn prop_macro_smoke(
            xs in crate::collection::vec((0u32..8, -1.0f64..1.0), 0..12),
            n in 1usize..4,
        ) {
            prop_assert!(xs.len() < 12);
            prop_assert!(n >= 1 && n < 4);
            for (k, w) in &xs {
                prop_assert!(*k < 8);
                prop_assert!((-1.0..1.0).contains(w));
            }
        }
    }

    proptest! {
        fn prop_macro_default_config(a in 0i64..100, b in 0i64..100) {
            prop_assert_eq!(a + b, b + a);
        }
    }
}
