//! Offline shim for the `parking_lot` crate.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors the tiny subset of `parking_lot`'s API it actually uses: `Mutex`
//! and `RwLock` with non-poisoning guards. Locks delegate to `std::sync`
//! primitives; a poisoned lock (a panic while held) is recovered rather than
//! propagated, matching `parking_lot` semantics.

use std::fmt;
use std::sync::{MutexGuard as StdMutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutual-exclusion lock with `parking_lot`'s API shape.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: StdMutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: match self.inner.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// Non-poisoning reader-writer lock with `parking_lot`'s API shape.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write guard. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn mutex_survives_panic_while_held() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning, lock still usable.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
