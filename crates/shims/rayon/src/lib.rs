//! Offline shim for the `rayon` crate.
//!
//! The build container cannot reach crates.io, so this crate vendors the
//! subset of rayon's data-parallel API the workspace uses: `par_iter()` on
//! slices/`Vec`s, `par_chunks_mut`, and the `map`/`filter`/`zip`/
//! `enumerate`/`for_each`/`collect` adaptors. Work is genuinely parallel:
//! items are split into one contiguous chunk per available core and executed
//! on `std::thread::scope` threads, preserving input order in the output.
//!
//! Unlike real rayon there is no work-stealing pool: each `collect`/
//! `for_each` spawns short-lived scoped threads. That is a good fit for this
//! workspace, where parallel regions are coarse (per-partition pipeline work,
//! GEMM row panels) and already guarded against tiny inputs.

/// Number of threads parallel regions fan out to (one per available core).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

thread_local! {
    static POOL_INDEX: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// Index of the calling thread within its parallel region (its chunk index),
/// or `None` on threads outside one — the same contract as rayon's
/// `current_thread_index`, which callers use for worker-lane attribution.
/// Because each region hands one contiguous chunk to each thread, an item's
/// lane never exceeds its own index within the region.
pub fn current_thread_index() -> Option<usize> {
    POOL_INDEX.with(|c| c.get())
}

/// Evaluates `f` over `items` in parallel, preserving order.
fn parallel_process<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = n.div_ceil(threads);
    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let c: Vec<I> = it.by_ref().take(chunk_len).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let results: Vec<Vec<O>> = std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = chunks
            .into_iter()
            .enumerate()
            .map(|(ci, c)| {
                scope.spawn(move || {
                    POOL_INDEX.with(|cell| cell.set(Some(ci)));
                    c.into_iter().map(f).collect::<Vec<O>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    results.into_iter().flatten().collect()
}

/// A parallel iterator over an eagerly collected list of items (references
/// into the source collection, so collection is cheap).
pub struct ParIter<I> {
    items: Vec<I>,
}

/// A parallel iterator with a fused `filter`/`map` stage applied per item at
/// drive time (`None` = filtered out).
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

impl<I: Send> ParIter<I> {
    /// Element-wise transformation.
    pub fn map<U, G>(self, g: G) -> ParMap<I, impl Fn(I) -> Option<U> + Sync>
    where
        U: Send,
        G: Fn(I) -> U + Sync,
    {
        ParMap {
            items: self.items,
            f: move |i| Some(g(i)),
        }
    }

    /// Keeps items matching the predicate.
    pub fn filter<P>(self, p: P) -> ParMap<I, impl Fn(I) -> Option<I> + Sync>
    where
        P: Fn(&I) -> bool + Sync,
    {
        ParMap {
            items: self.items,
            f: move |i| if p(&i) { Some(i) } else { None },
        }
    }

    /// Pairs this iterator with another, element by element (truncating to
    /// the shorter, like rayon/std `zip`).
    pub fn zip<J: Send>(self, other: ParIter<J>) -> ParIter<(I, J)> {
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    /// Attaches each item's index.
    pub fn enumerate(self) -> ParIter<(usize, I)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Runs `g` on every item in parallel.
    pub fn for_each<G>(self, g: G)
    where
        G: Fn(I) + Sync,
    {
        let _ = parallel_process(self.items, |i| g(i));
    }

    /// Evaluates in parallel and collects the results in input order.
    pub fn collect<C: FromIterator<I>>(self) -> C {
        parallel_process(self.items, |i| i).into_iter().collect()
    }
}

impl<I, U, F> ParMap<I, F>
where
    I: Send,
    U: Send,
    F: Fn(I) -> Option<U> + Sync,
{
    /// Element-wise transformation over the surviving items.
    pub fn map<V, G>(self, g: G) -> ParMap<I, impl Fn(I) -> Option<V> + Sync>
    where
        V: Send,
        G: Fn(U) -> V + Sync,
    {
        let f = self.f;
        ParMap {
            items: self.items,
            f: move |i| f(i).map(&g),
        }
    }

    /// Keeps surviving items matching the predicate.
    pub fn filter<P>(self, p: P) -> ParMap<I, impl Fn(I) -> Option<U> + Sync>
    where
        P: Fn(&U) -> bool + Sync,
    {
        let f = self.f;
        ParMap {
            items: self.items,
            f: move |i| f(i).filter(|u| p(u)),
        }
    }

    /// Runs `g` on every surviving item in parallel.
    pub fn for_each<G>(self, g: G)
    where
        G: Fn(U) + Sync,
    {
        let f = &self.f;
        let _ = parallel_process(self.items, |i| {
            if let Some(u) = f(i) {
                g(u)
            }
        });
    }

    /// Evaluates the stage in parallel and collects survivors in input order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        let f = &self.f;
        parallel_process(self.items, f)
            .into_iter()
            .flatten()
            .collect()
    }
}

/// `par_iter()` over shared slices and `Vec`s.
pub trait IntoParallelRefIterator<'a> {
    /// The per-item reference type.
    type Item: Send;
    /// A parallel iterator of shared references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `par_chunks_mut()` over mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over non-overlapping mutable chunks of `size`
    /// elements (the last chunk may be shorter).
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(size.max(1)).collect(),
        }
    }
}

/// Drop-in for `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_then_map() {
        let v: Vec<i64> = (0..100).collect();
        let out: Vec<i64> = v
            .par_iter()
            .filter(|x| **x % 2 == 0)
            .map(|x| x + 1)
            .collect();
        assert_eq!(out.len(), 50);
        assert_eq!(out[0], 1);
        assert_eq!(out[49], 99);
    }

    #[test]
    fn zip_then_map() {
        let a = vec![1, 2, 3];
        let b = vec![10, 20, 30];
        let out: Vec<i32> = a.par_iter().zip(b.par_iter()).map(|(x, y)| x + y).collect();
        assert_eq!(out, vec![11, 22, 33]);
    }

    #[test]
    fn chunks_mut_enumerate_for_each() {
        let mut data = vec![0usize; 10];
        data.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
            for x in chunk {
                *x = i;
            }
        });
        assert_eq!(data, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn for_each_runs_in_parallel_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let v: Vec<u64> = (0..64).collect();
        v.par_iter().for_each(|_| {
            ids.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        // At least one thread participated; more when cores are available.
        assert!(!ids.lock().unwrap().is_empty());
    }

    #[test]
    fn empty_input() {
        let v: Vec<u64> = Vec::new();
        let out: Vec<u64> = v.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn current_num_threads_positive() {
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn thread_index_set_inside_region_and_absent_outside() {
        assert_eq!(super::current_thread_index(), None);
        let v: Vec<usize> = (0..64).collect();
        let lanes: Vec<Option<usize>> = v
            .par_iter()
            .map(|_| super::current_thread_index())
            .collect();
        let threads = super::current_num_threads().min(64);
        if threads > 1 {
            for lane in &lanes {
                let lane = lane.expect("pool thread has an index");
                assert!(lane < threads, "lane {lane} out of range");
            }
            // Chunks are contiguous: lane indices are non-decreasing in
            // input order and an item's lane never exceeds its index.
            for (i, lane) in lanes.iter().enumerate() {
                assert!(lane.unwrap() <= i);
            }
        }
        assert_eq!(super::current_thread_index(), None);
    }
}
