//! Singular value decomposition by one-sided Jacobi rotations.
//!
//! This is the "exact SVD" physical operator of the PCA cost study
//! (§3, Table 2): `O(n d^2)` work, exact answers. One-sided Jacobi
//! orthogonalizes the columns of `A` in place; singular values emerge as the
//! column norms and `V` accumulates the rotations.

use crate::dense::DenseMatrix;
use crate::eigen::sym_eigen;
use crate::gemm;

/// Thin SVD `A = U diag(s) V^T` with `U: n×r`, `s: r`, `V: d×r`,
/// `r = min(n, d)`.
pub struct Svd {
    /// Left singular vectors (columns).
    pub u: DenseMatrix,
    /// Singular values, descending.
    pub s: Vec<f64>,
    /// Right singular vectors (columns).
    pub v: DenseMatrix,
}

/// Computes the thin SVD of `a`.
///
/// For tall matrices (`n >= d`) one-sided Jacobi runs directly. For wide
/// matrices we decompose the transpose and swap `U`/`V`.
pub fn svd(a: &DenseMatrix) -> Svd {
    let (n, d) = a.shape();
    if n >= d {
        svd_tall(a)
    } else {
        let t = svd_tall(&a.transpose());
        Svd {
            u: t.v,
            s: t.s,
            v: t.u,
        }
    }
}

fn svd_tall(a: &DenseMatrix) -> Svd {
    let (n, d) = a.shape();
    // Work on column-major storage for fast column rotations.
    let mut cols: Vec<Vec<f64>> = (0..d).map(|j| a.col(j)).collect();
    let mut v = DenseMatrix::identity(d);
    let fro2: f64 = a.data().iter().map(|x| x * x).sum();
    let tol = 1e-14 * fro2.max(1e-300);

    for _sweep in 0..60 {
        let mut rotated = false;
        for p in 0..d {
            for q in p + 1..d {
                let (mut app, mut aqq, mut apq) = (0.0, 0.0, 0.0);
                for i in 0..n {
                    app += cols[p][i] * cols[p][i];
                    aqq += cols[q][i] * cols[q][i];
                    apq += cols[p][i] * cols[q][i];
                }
                if apq.abs() <= tol || apq.abs() <= 1e-14 * (app * aqq).sqrt() {
                    continue;
                }
                rotated = true;
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for i in 0..n {
                    let xp = cols[p][i];
                    let xq = cols[q][i];
                    cols[p][i] = c * xp - s * xq;
                    cols[q][i] = s * xp + c * xq;
                }
                for k in 0..d {
                    let vp = v.get(k, p);
                    let vq = v.get(k, q);
                    v.set(k, p, c * vp - s * vq);
                    v.set(k, q, s * vp + c * vq);
                }
            }
        }
        if !rotated {
            break;
        }
    }

    // Singular values are the column norms; U's columns are the normalized
    // columns of the rotated A.
    let mut sv: Vec<(f64, usize)> = cols
        .iter()
        .enumerate()
        .map(|(j, col)| (col.iter().map(|x| x * x).sum::<f64>().sqrt(), j))
        .collect();
    sv.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());

    let mut u = DenseMatrix::zeros(n, d);
    let mut s = Vec::with_capacity(d);
    let mut order = Vec::with_capacity(d);
    for (rank, &(sigma, j)) in sv.iter().enumerate() {
        s.push(sigma);
        order.push(j);
        if sigma > 1e-300 {
            let inv = 1.0 / sigma;
            for i in 0..n {
                u.set(i, rank, cols[j][i] * inv);
            }
        }
    }
    let v_sorted = v.select_cols(&order);
    Svd { u, s, v: v_sorted }
}

impl Svd {
    /// Truncates the decomposition to the top `k` components.
    pub fn truncate(self, k: usize) -> Svd {
        let k = k.min(self.s.len());
        let idx: Vec<usize> = (0..k).collect();
        Svd {
            u: self.u.select_cols(&idx),
            s: self.s[..k].to_vec(),
            v: self.v.select_cols(&idx),
        }
    }

    /// Reconstructs `U diag(s) V^T`.
    pub fn reconstruct(&self) -> DenseMatrix {
        let us = scale_cols(&self.u, &self.s);
        gemm::matmul(&us, &self.v.transpose())
    }
}

/// Multiplies column `j` of `m` by `s[j]`.
pub fn scale_cols(m: &DenseMatrix, s: &[f64]) -> DenseMatrix {
    let mut out = m.clone();
    let cols = out.cols();
    for row in out.data_mut().chunks_exact_mut(cols) {
        for (v, sc) in row.iter_mut().zip(s) {
            *v *= sc;
        }
    }
    out
}

/// PCA helper: top-`k` principal components of the (already centered) data
/// matrix, via the covariance eigendecomposition. `O(n d^2 + d^3)` — the
/// classic exact route when `d` is moderate.
pub fn pca_via_covariance(centered: &DenseMatrix, k: usize) -> DenseMatrix {
    let n = centered.rows().max(1) as f64;
    let mut cov = gemm::gram(centered);
    cov.scale_inplace(1.0 / n);
    sym_eigen(&cov).top_k(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;

    fn test_matrix(n: usize, d: usize, seed: u64) -> DenseMatrix {
        DenseMatrix::from_fn(n, d, |i, j| {
            let h = (i as u64)
                .wrapping_mul(2862933555777941757)
                .wrapping_add((j as u64).wrapping_mul(3202034522624059733))
                .wrapping_add(seed);
            ((h >> 35) % 997) as f64 / 100.0 - 5.0
        })
    }

    #[test]
    fn svd_reconstructs_tall() {
        let a = test_matrix(10, 4, 1);
        let f = svd(&a);
        assert!(f.reconstruct().max_abs_diff(&a) < 1e-8);
    }

    #[test]
    fn svd_reconstructs_wide() {
        let a = test_matrix(3, 8, 2);
        let f = svd(&a);
        assert_eq!(f.u.shape(), (3, 3));
        assert_eq!(f.v.shape(), (8, 3));
        assert!(f.reconstruct().max_abs_diff(&a) < 1e-8);
    }

    #[test]
    fn singular_values_descending_nonnegative() {
        let a = test_matrix(12, 6, 3);
        let f = svd(&a);
        for w in f.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        assert!(f.s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn u_and_v_orthonormal() {
        let a = test_matrix(9, 5, 4);
        let f = svd(&a);
        let utu = matmul(&f.u.transpose(), &f.u);
        let vtv = matmul(&f.v.transpose(), &f.v);
        assert!(utu.max_abs_diff(&DenseMatrix::identity(5)) < 1e-8);
        assert!(vtv.max_abs_diff(&DenseMatrix::identity(5)) < 1e-8);
    }

    #[test]
    fn known_diagonal_singular_values() {
        let a = DenseMatrix::from_diag(&[5.0, 3.0, 1.0]);
        let f = svd(&a);
        assert!((f.s[0] - 5.0).abs() < 1e-10);
        assert!((f.s[1] - 3.0).abs() < 1e-10);
        assert!((f.s[2] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn frobenius_identity() {
        // ||A||_F^2 == sum of squared singular values.
        let a = test_matrix(8, 8, 5);
        let f = svd(&a);
        let fro2: f64 = a.data().iter().map(|x| x * x).sum();
        let ssq: f64 = f.s.iter().map(|x| x * x).sum();
        assert!((fro2 - ssq).abs() < 1e-6 * fro2);
    }

    #[test]
    fn truncation_is_best_rank_k() {
        // Eckart–Young: rank-k truncation residual equals the tail svs.
        let a = test_matrix(10, 6, 6);
        let f = svd(&a);
        let tail: f64 = f.s[2..].iter().map(|x| x * x).sum::<f64>().sqrt();
        let t = svd(&a).truncate(2);
        let resid = (&t.reconstruct() - &a).frobenius_norm();
        assert!((resid - tail).abs() < 1e-6 * (1.0 + tail));
    }

    #[test]
    fn rank_one_matrix() {
        let a = DenseMatrix::from_fn(6, 4, |i, j| (i as f64 + 1.0) * (j as f64 + 1.0));
        let f = svd(&a);
        assert!(f.s[0] > 1.0);
        for &sv in &f.s[1..] {
            assert!(sv < 1e-8 * f.s[0]);
        }
    }

    #[test]
    fn pca_covariance_finds_dominant_direction() {
        // Data stretched along [1, 1]/sqrt(2).
        let mut a = DenseMatrix::zeros(100, 2);
        for i in 0..100 {
            let t = (i as f64 - 50.0) / 10.0;
            let noise = ((i * 2654435761) % 17) as f64 / 1000.0;
            a.set(i, 0, t + noise);
            a.set(i, 1, t - noise);
        }
        let mu = a.col_means();
        a.center_rows(&mu);
        let pc = pca_via_covariance(&a, 1);
        let ratio = (pc.get(0, 0) / pc.get(1, 0)).abs();
        assert!(
            (ratio - 1.0).abs() < 0.05,
            "expected ~[1,1] direction, ratio {}",
            ratio
        );
    }
}
