//! Row-major dense matrices and the vector helpers built on plain `Vec<f64>`.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A row-major dense matrix of `f64`.
///
/// The element at row `i`, column `j` lives at `data[i * cols + j]`. Storage
/// is a single contiguous allocation, which keeps GEMM and decomposition
/// kernels cache-friendly and lets rows be handed out as slices.
#[derive(Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        DenseMatrix { rows, cols, data }
    }

    /// Builds a matrix whose rows are the given slices.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        DenseMatrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix by evaluating `f(i, j)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        DenseMatrix { rows, cols, data }
    }

    /// Builds a diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m.data[i * n + i] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow of the raw row-major storage.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the raw row-major storage.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Column `j` copied into a fresh vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Iterator over the rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Transposed copy.
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            let row = self.row(i);
            for (j, &v) in row.iter().enumerate() {
                t.data[j * self.rows + i] = v;
            }
        }
        t
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        self.iter_rows().map(|row| dot(row, x)).collect()
    }

    /// Transposed matrix-vector product `self^T * x`.
    pub fn tr_matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "tr_matvec dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (i, row) in self.iter_rows().enumerate() {
            axpy(x[i], row, &mut out);
        }
        out
    }

    /// Sub-matrix copy of rows `r0..r1` and columns `c0..c1`.
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> DenseMatrix {
        assert!(r0 <= r1 && r1 <= self.rows && c0 <= c1 && c1 <= self.cols);
        let mut out = DenseMatrix::zeros(r1 - r0, c1 - c0);
        for i in r0..r1 {
            out.row_mut(i - r0).copy_from_slice(&self.row(i)[c0..c1]);
        }
        out
    }

    /// Copy of the selected rows, in the given order.
    pub fn select_rows(&self, idx: &[usize]) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(idx.len(), self.cols);
        for (o, &i) in idx.iter().enumerate() {
            out.row_mut(o).copy_from_slice(self.row(i));
        }
        out
    }

    /// Copy of the selected columns, in the given order.
    pub fn select_cols(&self, idx: &[usize]) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, idx.len());
        for i in 0..self.rows {
            let row = self.row(i);
            for (o, &j) in idx.iter().enumerate() {
                out.data[i * idx.len() + o] = row[j];
            }
        }
        out
    }

    /// Stacks `self` on top of `other`.
    pub fn vstack(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, other.cols, "vstack column mismatch");
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        DenseMatrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Concatenates `self` and `other` horizontally.
    pub fn hstack(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.rows, other.rows, "hstack row mismatch");
        let cols = self.cols + other.cols;
        let mut out = DenseMatrix::zeros(self.rows, cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(other.row(i));
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Scales every entry in place.
    pub fn scale_inplace(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Column means (the empirical mean row vector).
    pub fn col_means(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.cols];
        if self.rows == 0 {
            return means;
        }
        for row in self.iter_rows() {
            axpy(1.0, row, &mut means);
        }
        let inv = 1.0 / self.rows as f64;
        for m in &mut means {
            *m *= inv;
        }
        means
    }

    /// Subtracts `mu` from every row in place.
    pub fn center_rows(&mut self, mu: &[f64]) {
        assert_eq!(mu.len(), self.cols);
        let cols = self.cols;
        for row in self.data.chunks_exact_mut(cols) {
            for (v, m) in row.iter_mut().zip(mu) {
                *v -= m;
            }
        }
    }

    /// Maximum absolute difference from `other`.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f64 {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Approximate in-memory footprint in bytes.
    pub fn nbytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>() + std::mem::size_of::<Self>()
    }
}

impl fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for i in 0..show {
            writeln!(f, "  {:?}", &self.row(i)[..self.cols.min(8)])?;
        }
        if show < self.rows {
            writeln!(f, "  ... ({} more rows)", self.rows - show)?;
        }
        write!(f, "]")
    }
}

impl Add<&DenseMatrix> for &DenseMatrix {
    type Output = DenseMatrix;
    fn add(self, rhs: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub<&DenseMatrix> for &DenseMatrix {
    type Output = DenseMatrix;
    fn sub(self, rhs: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl AddAssign<&DenseMatrix> for DenseMatrix {
    fn add_assign(&mut self, rhs: &DenseMatrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl Mul<f64> for &DenseMatrix {
    type Output = DenseMatrix;
    fn mul(self, s: f64) -> DenseMatrix {
        let mut out = self.clone();
        out.scale_inplace(s);
        out
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    // Four-way unrolled accumulation: keeps the FP pipelines busy and is
    // deterministic across runs (unlike a parallel reduction).
    let chunks = a.len() / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for c in 0..chunks {
        let i = c * 4;
        s0 += a[i] * b[i];
        s1 += a[i + 1] * b[i + 1];
        s2 += a[i + 2] * b[i + 2];
        s3 += a[i + 3] * b[i + 3];
    }
    let mut s = s0 + s1 + s2 + s3;
    for i in chunks * 4..a.len() {
        s += a[i] * b[i];
    }
    s
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x *= alpha`.
#[inline]
pub fn scal(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Euclidean norm of a slice.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Elementwise difference `a - b` as a new vector.
pub fn vsub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Elementwise sum `a + b` as a new vector.
pub fn vadd(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_identity_shapes() {
        let z = DenseMatrix::zeros(3, 4);
        assert_eq!(z.shape(), (3, 4));
        assert!(z.data().iter().all(|&v| v == 0.0));
        let i = DenseMatrix::identity(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        assert_eq!(i.get(2, 2), 1.0);
    }

    #[test]
    fn from_rows_and_access() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(m.shape(), (3, 2));
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(2), &[5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 4.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_ragged_panics() {
        let _ = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = DenseMatrix::from_fn(4, 7, |i, j| (i * 7 + j) as f64);
        let t = m.transpose();
        assert_eq!(t.shape(), (7, 4));
        assert_eq!(t.transpose(), m);
        assert_eq!(m.get(2, 5), t.get(5, 2));
    }

    #[test]
    fn matvec_known() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
        assert_eq!(m.tr_matvec(&[1.0, 1.0]), vec![4.0, 6.0]);
    }

    #[test]
    fn submatrix_and_selection() {
        let m = DenseMatrix::from_fn(5, 5, |i, j| (10 * i + j) as f64);
        let s = m.submatrix(1, 3, 2, 5);
        assert_eq!(s.shape(), (2, 3));
        assert_eq!(s.get(0, 0), 12.0);
        assert_eq!(s.get(1, 2), 24.0);
        let r = m.select_rows(&[4, 0]);
        assert_eq!(r.row(0)[0], 40.0);
        assert_eq!(r.row(1)[0], 0.0);
        let c = m.select_cols(&[3, 1]);
        assert_eq!(c.get(2, 0), 23.0);
        assert_eq!(c.get(2, 1), 21.0);
    }

    #[test]
    fn stacking() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0]]);
        let b = DenseMatrix::from_rows(&[&[3.0, 4.0]]);
        let v = a.vstack(&b);
        assert_eq!(v.shape(), (2, 2));
        assert_eq!(v.row(1), &[3.0, 4.0]);
        let h = a.hstack(&b);
        assert_eq!(h.shape(), (1, 4));
        assert_eq!(h.row(0), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn centering_removes_mean() {
        let mut m = DenseMatrix::from_rows(&[&[1.0, 10.0], &[3.0, 20.0]]);
        let mu = m.col_means();
        assert_eq!(mu, vec![2.0, 15.0]);
        m.center_rows(&mu);
        let mu2 = m.col_means();
        assert!(mu2.iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn arithmetic_ops() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = DenseMatrix::identity(2);
        let s = &a + &b;
        assert_eq!(s.get(0, 0), 2.0);
        let d = &s - &b;
        assert_eq!(d, a);
        let m = &a * 2.0;
        assert_eq!(m.get(1, 1), 8.0);
    }

    #[test]
    fn blas_level1() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [5.0, 4.0, 3.0, 2.0, 1.0];
        assert_eq!(dot(&a, &b), 35.0);
        let mut y = [0.0; 5];
        axpy(2.0, &a, &mut y);
        assert_eq!(y, [2.0, 4.0, 6.0, 8.0, 10.0]);
        scal(0.5, &mut y);
        assert_eq!(y, [1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    proptest! {
        #[test]
        fn prop_transpose_involution(rows in 1usize..12, cols in 1usize..12, seed in 0u64..1000) {
            let m = DenseMatrix::from_fn(rows, cols, |i, j| {
                ((i as u64 * 31 + j as u64 * 17 + seed) % 101) as f64 - 50.0
            });
            prop_assert_eq!(m.transpose().transpose(), m);
        }

        #[test]
        fn prop_dot_symmetry(v in proptest::collection::vec(-100.0f64..100.0, 1..64)) {
            let w: Vec<f64> = v.iter().rev().cloned().collect();
            let d1 = dot(&v, &w);
            let d2 = dot(&w, &v);
            prop_assert!((d1 - d2).abs() <= 1e-9 * (1.0 + d1.abs()));
        }

        #[test]
        fn prop_matvec_linearity(rows in 1usize..8, cols in 1usize..8, s in -3.0f64..3.0) {
            let m = DenseMatrix::from_fn(rows, cols, |i, j| (i + 2 * j) as f64);
            let x: Vec<f64> = (0..cols).map(|j| j as f64 + 1.0).collect();
            let sx: Vec<f64> = x.iter().map(|v| v * s).collect();
            let lhs = m.matvec(&sx);
            let rhs: Vec<f64> = m.matvec(&x).iter().map(|v| v * s).collect();
            for (a, b) in lhs.iter().zip(&rhs) {
                prop_assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()));
            }
        }
    }
}
