//! Symmetric eigendecomposition via the cyclic Jacobi rotation method.
//!
//! Used by the covariance-based PCA paths and by ZCA whitening. Jacobi is
//! `O(n^3)` per sweep with excellent accuracy for the small-to-medium `d × d`
//! covariance matrices these operators produce.

use crate::dense::DenseMatrix;

/// Eigendecomposition `A = V diag(λ) V^T` of a symmetric matrix.
pub struct SymEigen {
    /// Eigenvalues sorted in descending order.
    pub values: Vec<f64>,
    /// Column `j` of `vectors` is the eigenvector for `values[j]`.
    pub vectors: DenseMatrix,
}

/// Computes the eigendecomposition of a symmetric matrix with cyclic Jacobi
/// sweeps. Converges when all off-diagonal mass is below `1e-12` relative to
/// the Frobenius norm, or after 64 sweeps.
///
/// # Panics
/// Panics if `a` is not square.
pub fn sym_eigen(a: &DenseMatrix) -> SymEigen {
    let n = a.rows();
    assert_eq!(a.cols(), n, "sym_eigen requires a square matrix");
    let mut m = a.clone();
    let mut v = DenseMatrix::identity(n);
    let fro = m.frobenius_norm().max(1e-300);
    let tol = 1e-12 * fro;

    for _sweep in 0..64 {
        let mut off = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                off += m.get(i, j).powi(2);
            }
        }
        if off.sqrt() <= tol {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m.get(p, q);
                if apq.abs() <= tol / (n as f64) {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/cols p and q of m.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                // Accumulate rotations into v.
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m.get(i, i)).collect();
    order.sort_by(|&x, &y| diag[y].partial_cmp(&diag[x]).unwrap());
    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let vectors = v.select_cols(&order);
    SymEigen { values, vectors }
}

impl SymEigen {
    /// The top-`k` eigenvectors as a `n × k` matrix.
    pub fn top_k(&self, k: usize) -> DenseMatrix {
        let idx: Vec<usize> = (0..k.min(self.vectors.cols())).collect();
        self.vectors.select_cols(&idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;

    fn symmetric(n: usize, seed: u64) -> DenseMatrix {
        let mut a = DenseMatrix::from_fn(n, n, |i, j| {
            ((i as u64 * 31 + j as u64 * 17 + seed) % 13) as f64 - 6.0
        });
        // Symmetrize.
        let t = a.transpose();
        a += &t;
        a
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = DenseMatrix::from_diag(&[3.0, -1.0, 7.0]);
        let e = sym_eigen(&a);
        assert!((e.values[0] - 7.0).abs() < 1e-10);
        assert!((e.values[1] - 3.0).abs() < 1e-10);
        assert!((e.values[2] + 1.0).abs() < 1e-10);
    }

    #[test]
    fn reconstruction() {
        let a = symmetric(6, 1);
        let e = sym_eigen(&a);
        let lam = DenseMatrix::from_diag(&e.values);
        let rec = matmul(&matmul(&e.vectors, &lam), &e.vectors.transpose());
        assert!(rec.max_abs_diff(&a) < 1e-8, "diff {}", rec.max_abs_diff(&a));
    }

    #[test]
    fn vectors_orthonormal() {
        let a = symmetric(7, 2);
        let e = sym_eigen(&a);
        let vtv = matmul(&e.vectors.transpose(), &e.vectors);
        assert!(vtv.max_abs_diff(&DenseMatrix::identity(7)) < 1e-9);
    }

    #[test]
    fn eigenvalues_sorted_descending() {
        let a = symmetric(8, 3);
        let e = sym_eigen(&a);
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = sym_eigen(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        // Eigenvector for 3 is [1,1]/sqrt(2) up to sign.
        let v0 = e.vectors.col(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v0[0] - v0[1]).abs() < 1e-10);
    }

    #[test]
    fn trace_preserved() {
        let a = symmetric(9, 4);
        let tr: f64 = (0..9).map(|i| a.get(i, i)).sum();
        let e = sym_eigen(&a);
        let sum: f64 = e.values.iter().sum();
        assert!((tr - sum).abs() < 1e-8);
    }

    #[test]
    fn top_k_shape() {
        let a = symmetric(5, 5);
        let e = sym_eigen(&a);
        assert_eq!(e.top_k(2).shape(), (5, 2));
        assert_eq!(e.top_k(99).shape(), (5, 5));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::gemm::matmul;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_reconstruction_random_symmetric(n in 2usize..8, seed in 0u64..500) {
            let mut a = DenseMatrix::from_fn(n, n, |i, j| {
                let h = (i as u64 + 1)
                    .wrapping_mul(seed.wrapping_add(j as u64 * 31 + 7))
                    .wrapping_mul(0x9E3779B97F4A7C15);
                ((h >> 40) % 1000) as f64 / 100.0 - 5.0
            });
            let t = a.transpose();
            a += &t;
            let e = sym_eigen(&a);
            let lam = DenseMatrix::from_diag(&e.values);
            let rec = matmul(&matmul(&e.vectors, &lam), &e.vectors.transpose());
            prop_assert!(rec.max_abs_diff(&a) < 1e-7, "diff {}", rec.max_abs_diff(&a));
        }

        #[test]
        fn prop_rayleigh_bounds(n in 2usize..7, seed in 0u64..500) {
            // For any unit vector v: λ_min <= vᵀAv <= λ_max.
            let mut a = DenseMatrix::from_fn(n, n, |i, j| {
                ((i * 3 + j * 7 + seed as usize) % 11) as f64 - 5.0
            });
            let t = a.transpose();
            a += &t;
            let e = sym_eigen(&a);
            let v: Vec<f64> = (0..n).map(|i| if i == 0 { 1.0 } else { 0.0 }).collect();
            let av = a.matvec(&v);
            let quad: f64 = v.iter().zip(&av).map(|(x, y)| x * y).sum();
            prop_assert!(quad <= e.values[0] + 1e-8);
            prop_assert!(quad >= *e.values.last().expect("non-empty") - 1e-8);
        }
    }
}
