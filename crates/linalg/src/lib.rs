//! # keystone-linalg
//!
//! Dense and sparse linear-algebra kernels plus FFT routines used throughout
//! the KeystoneML reproduction. Everything is implemented from scratch (no
//! BLAS/LAPACK binding) so that the cost asymptotics the paper's optimizer
//! reasons about — `O(nd^2)` QR, `O(nk^2)` truncated SVD, `O(n^2 log n)` FFT
//! convolution, sparse `O(nnz)` products — are exactly the asymptotics of the
//! code that runs.
//!
//! Conventions:
//! * All scalars are `f64`.
//! * Matrices are row-major [`DenseMatrix`] with `rows × cols` shape.
//! * Sparse vectors keep strictly increasing indices.

// Numeric kernels index multiple buffers in lockstep; indexed loops are the
// clearer idiom there.
#![allow(clippy::needless_range_loop)]

pub mod cholesky;
pub mod dense;
pub mod eigen;
pub mod fft;
pub mod gemm;
pub mod qr;
pub mod rng;
pub mod sparse;
pub mod svd;
pub mod tsvd;

pub use cholesky::CholeskyError;
pub use dense::DenseMatrix;
pub use fft::Complex;
pub use sparse::{CsrMatrix, SparseVector};

/// Absolute tolerance used by the crate's own tests for floating-point
/// comparisons of decomposition residuals.
pub const TEST_TOL: f64 = 1e-8;

/// Returns `true` if `a` and `b` agree within `tol` absolutely or relatively.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    diff <= tol || diff <= tol * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute_and_relative() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(approx_eq(1e12, 1e12 * (1.0 + 1e-12), 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-9));
        assert!(approx_eq(0.0, 0.0, 1e-15));
    }
}
