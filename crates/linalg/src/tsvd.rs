//! Randomized truncated SVD (Halko, Martinsson & Tropp 2011) — the
//! approximate "TSVD" physical operator of the PCA cost study.
//!
//! Cost is `O(n d k)` for the range finder plus `O(n k^2)` for the small
//! factorization — the `O(n k^2)` regime of Table 2 that makes the
//! approximate method win when `k << d`.

use crate::dense::DenseMatrix;
use crate::gemm::{matmul, matmul_parallel};
use crate::qr::QrFactorization;
use crate::rng::XorShiftRng;
use crate::svd::{svd, Svd};

/// Options for the randomized truncated SVD.
#[derive(Debug, Clone, Copy)]
pub struct TsvdOptions {
    /// Oversampling columns added to the sketch (default 8).
    pub oversample: usize,
    /// Power iterations applied to sharpen the range (default 2).
    pub power_iters: usize,
    /// RNG seed so results are reproducible.
    pub seed: u64,
}

impl Default for TsvdOptions {
    fn default() -> Self {
        TsvdOptions {
            oversample: 8,
            power_iters: 2,
            seed: 0x5eed,
        }
    }
}

/// Computes an approximate rank-`k` SVD of `a`.
///
/// Returns a decomposition with exactly `min(k, min(n,d))` components.
pub fn truncated_svd(a: &DenseMatrix, k: usize, opts: TsvdOptions) -> Svd {
    let (n, d) = a.shape();
    let rank_cap = n.min(d);
    let k = k.min(rank_cap);
    if k == 0 {
        return Svd {
            u: DenseMatrix::zeros(n, 0),
            s: vec![],
            v: DenseMatrix::zeros(d, 0),
        };
    }
    let l = (k + opts.oversample).min(rank_cap);

    // Gaussian test matrix Ω: d × l.
    let mut rng = XorShiftRng::new(opts.seed);
    let omega = DenseMatrix::from_fn(d, l, |_, _| rng.next_gaussian());

    // Range sketch Y = A Ω, refined by power iterations with QR
    // re-orthonormalization for numerical stability.
    let mut y = matmul_parallel(a, &omega);
    let at = a.transpose();
    for _ in 0..opts.power_iters {
        let q = QrFactorization::new(y).q();
        let z = matmul_parallel(&at, &q);
        let qz = QrFactorization::new(z).q();
        y = matmul_parallel(a, &qz);
    }
    let q = QrFactorization::new(y).q(); // n × l orthonormal basis

    // Project: B = Q^T A (l × d), then exact SVD of the small B.
    let b = matmul_parallel(&q.transpose(), a);
    let small = svd(&b);
    let u = matmul(&q, &small.u);
    Svd {
        u,
        s: small.s,
        v: small.v,
    }
    .truncate(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::svd::scale_cols;

    /// Low-rank matrix with a sharp spectrum so the sketch captures it.
    fn low_rank(n: usize, d: usize, r: usize, seed: u64) -> DenseMatrix {
        let mut rng = XorShiftRng::new(seed);
        let u = DenseMatrix::from_fn(n, r, |_, _| rng.next_gaussian());
        let v = DenseMatrix::from_fn(r, d, |_, _| rng.next_gaussian());
        let s: Vec<f64> = (0..r).map(|i| 10.0_f64.powi(-(i as i32))).collect();
        matmul(&scale_cols(&u, &s), &v)
    }

    #[test]
    fn recovers_low_rank_exactly() {
        let a = low_rank(40, 30, 3, 1);
        let t = truncated_svd(&a, 3, TsvdOptions::default());
        let resid = (&t.reconstruct() - &a).frobenius_norm();
        assert!(
            resid < 1e-8 * a.frobenius_norm(),
            "residual {} too large",
            resid
        );
    }

    #[test]
    fn singular_values_match_exact_svd() {
        let a = low_rank(25, 20, 5, 2);
        let exact = svd(&a);
        let approx = truncated_svd(&a, 5, TsvdOptions::default());
        for i in 0..5 {
            let rel = (exact.s[i] - approx.s[i]).abs() / exact.s[i].max(1e-12);
            assert!(
                rel < 1e-6,
                "sv {} mismatch: {} vs {}",
                i,
                exact.s[i],
                approx.s[i]
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = low_rank(20, 15, 4, 3);
        let t1 = truncated_svd(&a, 4, TsvdOptions::default());
        let t2 = truncated_svd(&a, 4, TsvdOptions::default());
        assert!(t1.u.max_abs_diff(&t2.u) == 0.0);
        assert_eq!(t1.s, t2.s);
    }

    #[test]
    fn k_larger_than_rank_cap() {
        let a = low_rank(5, 4, 2, 4);
        let t = truncated_svd(&a, 100, TsvdOptions::default());
        assert_eq!(t.s.len(), 4);
        assert_eq!(t.u.shape(), (5, 4));
    }

    #[test]
    fn k_zero_is_empty() {
        let a = low_rank(5, 4, 2, 5);
        let t = truncated_svd(&a, 0, TsvdOptions::default());
        assert!(t.s.is_empty());
        assert_eq!(t.u.cols(), 0);
    }

    #[test]
    fn orthonormal_factors() {
        let a = low_rank(30, 25, 6, 6);
        let t = truncated_svd(&a, 6, TsvdOptions::default());
        let utu = matmul(&t.u.transpose(), &t.u);
        assert!(utu.max_abs_diff(&DenseMatrix::identity(6)) < 1e-8);
        let vtv = matmul(&t.v.transpose(), &t.v);
        assert!(vtv.max_abs_diff(&DenseMatrix::identity(6)) < 1e-8);
    }

    #[test]
    fn full_rank_matrix_top_k_close() {
        // Even on a full-rank matrix the top singular value should be close
        // after power iterations.
        let mut rng = XorShiftRng::new(7);
        let a = DenseMatrix::from_fn(30, 30, |_, _| rng.next_gaussian());
        let exact = svd(&a);
        let approx = truncated_svd(
            &a,
            3,
            TsvdOptions {
                power_iters: 4,
                ..Default::default()
            },
        );
        let rel = (exact.s[0] - approx.s[0]).abs() / exact.s[0];
        assert!(rel < 0.01, "top sv rel err {}", rel);
    }
}
