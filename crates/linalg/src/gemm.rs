//! General matrix-matrix multiplication: a cache-blocked sequential kernel
//! and a rayon-parallel wrapper that splits over row panels.
//!
//! This is the "BLAS" strategy referenced by the convolution operator
//! (im2col + GEMM) and by the dense solvers; its cost is the textbook
//! `O(m·n·k)` the paper's cost models assume.
//!
//! The inner update of all three entry points (`matmul`, [`gram`],
//! [`tr_matmul`]) is the same rank-1 row update `out[j] += alpha * b[j]`,
//! implemented twice in [`kernels`]: a plain scalar loop kept as the
//! reference, and a portable 4-wide unrolled variant that LLVM lowers to
//! vector FMAs. Both compute the identical per-element expression in the
//! same order, so their outputs are bit-identical — asserted by the
//! `simd_matches_scalar_*` tests below. Building with
//! `--features scalar-kernels` routes every public entry point through the
//! scalar reference instead, which is how CI diffs the two paths.

use crate::dense::DenseMatrix;
use rayon::prelude::*;

/// Block edge used by the cache-blocked kernel. 64 doubles = 512 bytes per
/// row segment, comfortably inside L1 for the three panels touched at once.
const BLOCK: usize = 64;

/// Nonzero-fraction threshold below which the zero-skip fast path in the
/// GEMM-family kernels is enabled. On inputs at least this dense the skip
/// test is pure overhead *and* makes runtime data-dependent, which skews
/// FLOP-proportional cost accounting; on genuinely sparse inputs it saves
/// whole row updates.
pub const ZERO_SKIP_MAX_DENSITY: f64 = 0.5;

/// Fraction of nonzero entries in `data` (1.0 for an empty slice, so empty
/// inputs count as dense and never take the skip path).
pub fn density(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 1.0;
    }
    let nnz = data.iter().filter(|v| **v != 0.0).count();
    nnz as f64 / data.len() as f64
}

/// The zero-skip policy: skip zero multipliers only when the input is
/// sparse enough ([`density`] below [`ZERO_SKIP_MAX_DENSITY`]). Skipping a
/// `0.0` multiplier never changes the result bitwise on finite inputs —
/// accumulators start at `+0.0` and adding `±0.0` products is the identity
/// — so this gate trades only *runtime* determinism, never values.
pub fn zero_skip_enabled(data: &[f64]) -> bool {
    density(data) < ZERO_SKIP_MAX_DENSITY
}

/// The shared inner row-update kernels. Scalar reference and the portable
/// 4-wide SIMD variant live side by side; [`kernels::saxpy_row`] dispatches
/// on the `scalar-kernels` feature.
pub mod kernels {
    /// Scalar reference: `out[j] += alpha * b[j]`.
    #[inline]
    pub fn saxpy_row_scalar(alpha: f64, b: &[f64], out: &mut [f64]) {
        for (o, &bv) in out.iter_mut().zip(b) {
            *o += alpha * bv;
        }
    }

    /// Portable 4-wide variant of [`saxpy_row_scalar`]: the body is four
    /// independent lanes per iteration, which LLVM auto-vectorizes to
    /// vector mul/add (or FMA where the target allows). Each element's
    /// update is the same single expression as the scalar loop, so the two
    /// are bit-identical on every input.
    #[inline]
    pub fn saxpy_row_simd(alpha: f64, b: &[f64], out: &mut [f64]) {
        let n = out.len().min(b.len());
        let (out4, out_tail) = out[..n].split_at_mut(n - n % 4);
        let (b4, b_tail) = b[..n].split_at(n - n % 4);
        for (o, bv) in out4.chunks_exact_mut(4).zip(b4.chunks_exact(4)) {
            o[0] += alpha * bv[0];
            o[1] += alpha * bv[1];
            o[2] += alpha * bv[2];
            o[3] += alpha * bv[3];
        }
        for (o, &bv) in out_tail.iter_mut().zip(b_tail) {
            *o += alpha * bv;
        }
    }

    /// Active kernel: SIMD by default, scalar reference under
    /// `--features scalar-kernels`.
    #[inline]
    pub fn saxpy_row(alpha: f64, b: &[f64], out: &mut [f64]) {
        #[cfg(feature = "scalar-kernels")]
        saxpy_row_scalar(alpha, b, out);
        #[cfg(not(feature = "scalar-kernels"))]
        saxpy_row_simd(alpha, b, out);
    }
}

#[cfg(test)]
thread_local! {
    /// Test-only cost probe: counts inner row updates actually executed by
    /// `gram`/`tr_matmul`, so tests can assert the zero-skip gate keeps
    /// runtime FLOP-proportional on dense inputs.
    static ROW_UPDATES: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

#[inline]
fn count_row_update() {
    #[cfg(test)]
    ROW_UPDATES.with(|c| c.set(c.get() + 1));
}

/// Computes `A * B`.
///
/// # Panics
/// Panics if `a.cols() != b.rows()`.
pub fn matmul(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul dimension mismatch: {:?} * {:?}",
        a.shape(),
        b.shape()
    );
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = DenseMatrix::zeros(m, n);
    let skip = zero_skip_enabled(a.data());
    matmul_into(a.data(), b.data(), out.data_mut(), m, k, n, skip);
    out
}

/// Computes `A^T * A` exploiting symmetry (used for Gram matrices in the
/// normal-equation solvers). Cost is `n·d²/2` multiply-adds.
pub fn gram(a: &DenseMatrix) -> DenseMatrix {
    let (n, d) = a.shape();
    let skip = zero_skip_enabled(a.data());
    let mut g = DenseMatrix::zeros(d, d);
    for r in 0..n {
        let row = a.row(r);
        for i in 0..d {
            let ai = row[i];
            if skip && ai == 0.0 {
                continue;
            }
            count_row_update();
            let grow = &mut g.data_mut()[i * d..(i + 1) * d];
            kernels::saxpy_row(ai, &row[i..d], &mut grow[i..d]);
        }
    }
    // Mirror the upper triangle.
    for i in 0..d {
        for j in 0..i {
            let v = g.get(j, i);
            g.set(i, j, v);
        }
    }
    g
}

/// Computes `A^T * B` (used for the right-hand side of normal equations).
pub fn tr_matmul(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(a.rows(), b.rows(), "tr_matmul dimension mismatch");
    let (n, d) = a.shape();
    let k = b.cols();
    let skip = zero_skip_enabled(a.data());
    let mut out = DenseMatrix::zeros(d, k);
    for r in 0..n {
        let arow = a.row(r);
        let brow = b.row(r);
        for i in 0..d {
            let ai = arow[i];
            if skip && ai == 0.0 {
                continue;
            }
            count_row_update();
            let orow = &mut out.data_mut()[i * k..(i + 1) * k];
            kernels::saxpy_row(ai, brow, orow);
        }
    }
    out
}

/// Parallel `A * B`, splitting A's rows across the rayon pool. Falls back to
/// the sequential kernel for small products where fork overhead dominates.
pub fn matmul_parallel(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let (m, k) = a.shape();
    let n = b.cols();
    assert_eq!(k, b.rows(), "matmul dimension mismatch");
    if m * k * n < 64 * 64 * 64 {
        return matmul(a, b);
    }
    let mut out = DenseMatrix::zeros(m, n);
    let skip = zero_skip_enabled(a.data());
    let panel = (m / rayon::current_num_threads().max(1)).max(16);
    out.data_mut()
        .par_chunks_mut(panel * n)
        .enumerate()
        .for_each(|(p, chunk)| {
            // `m*n` and `panel*n` are both multiples of `n`, so every chunk
            // — including the trailing remainder — covers whole rows. The
            // `chunk.len() / n` below relies on that; a misaligned chunk
            // would silently drop its partial row.
            debug_assert_eq!(
                chunk.len() % n,
                0,
                "matmul_parallel: chunk of {} elements is not row-aligned (n = {n})",
                chunk.len()
            );
            let r0 = p * panel;
            let rows = chunk.len() / n;
            matmul_into(
                &a.data()[r0 * k..(r0 + rows) * k],
                b.data(),
                chunk,
                rows,
                k,
                n,
                skip,
            );
        });
    out
}

/// Cache-blocked row-major GEMM into a pre-zeroed output buffer.
/// `skip_zeros` enables the sparse fast path (see [`zero_skip_enabled`]);
/// the result is bitwise independent of the flag on finite inputs.
#[allow(clippy::too_many_arguments)]
fn matmul_into(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize, skip: bool) {
    for kk in (0..k).step_by(BLOCK) {
        let kmax = (kk + BLOCK).min(k);
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for p in kk..kmax {
                let aval = arow[p];
                if skip && aval == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                kernels::saxpy_row(aval, brow, orow);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
        let (m, k) = a.shape();
        let n = b.cols();
        let mut out = DenseMatrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a.get(i, p) * b.get(p, j);
                }
                out.set(i, j, s);
            }
        }
        out
    }

    fn row_updates_during<R>(f: impl FnOnce() -> R) -> (R, u64) {
        ROW_UPDATES.with(|c| c.set(0));
        let r = f();
        (r, ROW_UPDATES.with(|c| c.get()))
    }

    #[test]
    fn matmul_identity() {
        let a = DenseMatrix::from_fn(5, 5, |i, j| (i * 5 + j) as f64);
        let i = DenseMatrix::identity(5);
        assert_eq!(matmul(&a, &i), a);
        assert_eq!(matmul(&i, &a), a);
    }

    #[test]
    fn matmul_rectangular_known() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = DenseMatrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.row(0), &[58.0, 64.0]);
        assert_eq!(c.row(1), &[139.0, 154.0]);
    }

    #[test]
    fn gram_matches_explicit() {
        let a = DenseMatrix::from_fn(7, 4, |i, j| ((i * 3 + j * 5) % 11) as f64 - 5.0);
        let g = gram(&a);
        let expect = matmul(&a.transpose(), &a);
        assert!(g.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn tr_matmul_matches_explicit() {
        let a = DenseMatrix::from_fn(6, 3, |i, j| (i + j) as f64);
        let b = DenseMatrix::from_fn(6, 2, |i, j| (i * 2 + j) as f64);
        let out = tr_matmul(&a, &b);
        let expect = matmul(&a.transpose(), &b);
        assert!(out.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn parallel_matches_sequential_large() {
        let a = DenseMatrix::from_fn(130, 70, |i, j| ((i * 7 + j) % 13) as f64 - 6.0);
        let b = DenseMatrix::from_fn(70, 90, |i, j| ((i * 5 + j) % 17) as f64 - 8.0);
        let p = matmul_parallel(&a, &b);
        let s = matmul(&a, &b);
        assert!(p.max_abs_diff(&s) < 1e-9);
    }

    /// Regression for the trailing-chunk remainder: with prime dimensions
    /// no panel size divides `m`, so the last `par_chunks_mut` chunk is a
    /// remainder chunk. Row partitioning never changes per-row arithmetic,
    /// so the parallel result must match the sequential kernel *bitwise*.
    #[test]
    fn parallel_prime_dims_remainder_chunk_exact() {
        let (m, k, n) = (97, 61, 53);
        let a = DenseMatrix::from_fn(m, k, |i, j| ((i * 31 + j * 17) % 29) as f64 / 7.0 - 2.0);
        let b = DenseMatrix::from_fn(k, n, |i, j| ((i * 13 + j * 19) % 23) as f64 / 5.0 - 2.0);
        let p = matmul_parallel(&a, &b);
        let s = matmul(&a, &b);
        assert_eq!(p.shape(), (m, n));
        assert_eq!(
            p.max_abs_diff(&s),
            0.0,
            "parallel remainder chunk diverged from sequential kernel"
        );
    }

    #[test]
    fn simd_matches_scalar_saxpy_row_exactly() {
        for len in [0usize, 1, 3, 4, 5, 7, 8, 17, 64, 65] {
            let b: Vec<f64> = (0..len).map(|i| (i as f64 - 3.5) * 0.377).collect();
            let init: Vec<f64> = (0..len).map(|i| (i as f64) * 1.0e-3 - 0.02).collect();
            for alpha in [0.0, -0.0, 1.0, -2.75, 3.0e-9] {
                let mut scalar = init.clone();
                let mut simd = init.clone();
                kernels::saxpy_row_scalar(alpha, &b, &mut scalar);
                kernels::saxpy_row_simd(alpha, &b, &mut simd);
                let sb: Vec<u64> = scalar.iter().map(|v| v.to_bits()).collect();
                let vb: Vec<u64> = simd.iter().map(|v| v.to_bits()).collect();
                assert_eq!(sb, vb, "len={len} alpha={alpha}");
            }
        }
    }

    /// The zero-skip gate: on a dense input with a few sprinkled zeros the
    /// skip must stay OFF (row-update count equals the full n·d, keeping
    /// runtime FLOP-proportional); on a sparse input it must fire.
    #[test]
    fn zero_skip_cost_accounting() {
        let (n, d) = (16, 8);
        // Dense but with a handful of exact zeros (~10% of entries).
        let dense = DenseMatrix::from_fn(n, d, |i, j| {
            if (i * d + j) % 10 == 0 {
                0.0
            } else {
                (i * d + j) as f64 * 0.1 - 3.0
            }
        });
        assert!(!zero_skip_enabled(dense.data()));
        let (g_dense, updates_dense) = row_updates_during(|| gram(&dense));
        assert_eq!(
            updates_dense,
            (n * d) as u64,
            "dense gram must execute every row update regardless of stray zeros"
        );

        // Mostly zeros: the skip fires and the update count drops to nnz.
        let sparse = DenseMatrix::from_fn(n, d, |i, j| if (i + j) % 8 == 0 { 2.0 } else { 0.0 });
        assert!(zero_skip_enabled(sparse.data()));
        let nnz = sparse.data().iter().filter(|v| **v != 0.0).count() as u64;
        let (_, updates_sparse) = row_updates_during(|| gram(&sparse));
        assert_eq!(updates_sparse, nnz);
        assert!(updates_sparse < (n * d) as u64);

        // Values are bitwise independent of the gate: force both paths
        // through matmul_into on the dense input and diff exactly.
        let expect = matmul(&dense.transpose(), &dense);
        assert_eq!(g_dense.max_abs_diff(&expect), 0.0);
        let (m, k) = dense.shape();
        let mut skip_on = DenseMatrix::zeros(m, m);
        let mut skip_off = DenseMatrix::zeros(m, m);
        let dt = dense.transpose();
        matmul_into(dense.data(), dt.data(), skip_on.data_mut(), m, k, m, true);
        matmul_into(dense.data(), dt.data(), skip_off.data_mut(), m, k, m, false);
        assert_eq!(skip_on.max_abs_diff(&skip_off), 0.0);

        // tr_matmul honors the same gate.
        let rhs = DenseMatrix::from_fn(n, 3, |i, j| (i + 2 * j) as f64 * 0.25 - 1.0);
        let (_, tr_updates) = row_updates_during(|| tr_matmul(&dense, &rhs));
        assert_eq!(tr_updates, (n * d) as u64);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dims_panic() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(4, 2);
        let _ = matmul(&a, &b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_blocked_matches_naive(m in 1usize..20, k in 1usize..20, n in 1usize..20, seed in 0u64..100) {
            let a = DenseMatrix::from_fn(m, k, |i, j| ((i as u64 * 13 + j as u64 * 7 + seed) % 19) as f64 - 9.0);
            let b = DenseMatrix::from_fn(k, n, |i, j| ((i as u64 * 5 + j as u64 * 11 + seed) % 23) as f64 - 11.0);
            let fast = matmul(&a, &b);
            let slow = naive(&a, &b);
            prop_assert!(fast.max_abs_diff(&slow) < 1e-9);
        }

        #[test]
        fn prop_matmul_associates_with_vector(m in 1usize..10, k in 1usize..10, n in 1usize..10) {
            // (A * B) x == A * (B x)
            let a = DenseMatrix::from_fn(m, k, |i, j| (i as f64 - j as f64) / 3.0);
            let b = DenseMatrix::from_fn(k, n, |i, j| (i * j) as f64 / 5.0);
            let x: Vec<f64> = (0..n).map(|i| i as f64 + 0.5).collect();
            let lhs = matmul(&a, &b).matvec(&x);
            let rhs = a.matvec(&b.matvec(&x));
            for (l, r) in lhs.iter().zip(&rhs) {
                prop_assert!((l - r).abs() < 1e-9 * (1.0 + r.abs()));
            }
        }

        /// Bit-identity of the zero-skip gate on random sparse-ish inputs:
        /// matmul's output must not depend on whether the gate fired.
        #[test]
        fn prop_skip_gate_never_changes_values(m in 1usize..12, k in 1usize..12, n in 1usize..12, seed in 0u64..50) {
            let a = DenseMatrix::from_fn(m, k, |i, j| {
                let h = i as u64 * 13 + j as u64 * 7 + seed;
                if h.is_multiple_of(3) { 0.0 } else { (h % 19) as f64 - 9.0 }
            });
            let b = DenseMatrix::from_fn(k, n, |i, j| ((i as u64 * 5 + j as u64 * 11 + seed) % 23) as f64 - 11.0);
            let mut with_skip = DenseMatrix::zeros(m, n);
            let mut without = DenseMatrix::zeros(m, n);
            matmul_into(a.data(), b.data(), with_skip.data_mut(), m, k, n, true);
            matmul_into(a.data(), b.data(), without.data_mut(), m, k, n, false);
            prop_assert_eq!(with_skip.max_abs_diff(&without), 0.0);
        }
    }
}
