//! General matrix-matrix multiplication: a cache-blocked sequential kernel
//! and a rayon-parallel wrapper that splits over row panels.
//!
//! This is the "BLAS" strategy referenced by the convolution operator
//! (im2col + GEMM) and by the dense solvers; its cost is the textbook
//! `O(m·n·k)` the paper's cost models assume.

use crate::dense::DenseMatrix;
use rayon::prelude::*;

/// Block edge used by the cache-blocked kernel. 64 doubles = 512 bytes per
/// row segment, comfortably inside L1 for the three panels touched at once.
const BLOCK: usize = 64;

/// Computes `A * B`.
///
/// # Panics
/// Panics if `a.cols() != b.rows()`.
pub fn matmul(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul dimension mismatch: {:?} * {:?}",
        a.shape(),
        b.shape()
    );
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = DenseMatrix::zeros(m, n);
    matmul_into(a.data(), b.data(), out.data_mut(), m, k, n);
    out
}

/// Computes `A^T * A` exploiting symmetry (used for Gram matrices in the
/// normal-equation solvers). Cost is `n·d²/2` multiply-adds.
pub fn gram(a: &DenseMatrix) -> DenseMatrix {
    let (n, d) = a.shape();
    let mut g = DenseMatrix::zeros(d, d);
    for r in 0..n {
        let row = a.row(r);
        for i in 0..d {
            let ai = row[i];
            if ai == 0.0 {
                continue;
            }
            let grow = &mut g.data_mut()[i * d..(i + 1) * d];
            for j in i..d {
                grow[j] += ai * row[j];
            }
        }
    }
    // Mirror the upper triangle.
    for i in 0..d {
        for j in 0..i {
            let v = g.get(j, i);
            g.set(i, j, v);
        }
    }
    g
}

/// Computes `A^T * B` (used for the right-hand side of normal equations).
pub fn tr_matmul(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(a.rows(), b.rows(), "tr_matmul dimension mismatch");
    let (n, d) = a.shape();
    let k = b.cols();
    let mut out = DenseMatrix::zeros(d, k);
    for r in 0..n {
        let arow = a.row(r);
        let brow = b.row(r);
        for i in 0..d {
            let ai = arow[i];
            if ai == 0.0 {
                continue;
            }
            let orow = &mut out.data_mut()[i * k..(i + 1) * k];
            for j in 0..k {
                orow[j] += ai * brow[j];
            }
        }
    }
    out
}

/// Parallel `A * B`, splitting A's rows across the rayon pool. Falls back to
/// the sequential kernel for small products where fork overhead dominates.
pub fn matmul_parallel(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let (m, k) = a.shape();
    let n = b.cols();
    assert_eq!(k, b.rows(), "matmul dimension mismatch");
    if m * k * n < 64 * 64 * 64 {
        return matmul(a, b);
    }
    let mut out = DenseMatrix::zeros(m, n);
    let panel = (m / rayon::current_num_threads().max(1)).max(16);
    out.data_mut()
        .par_chunks_mut(panel * n)
        .enumerate()
        .for_each(|(p, chunk)| {
            let r0 = p * panel;
            let rows = chunk.len() / n;
            matmul_into(
                &a.data()[r0 * k..(r0 + rows) * k],
                b.data(),
                chunk,
                rows,
                k,
                n,
            );
        });
    out
}

/// Cache-blocked row-major GEMM into a pre-zeroed output buffer.
fn matmul_into(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
    for kk in (0..k).step_by(BLOCK) {
        let kmax = (kk + BLOCK).min(k);
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for p in kk..kmax {
                let aval = arow[p];
                if aval == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += aval * bv;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
        let (m, k) = a.shape();
        let n = b.cols();
        let mut out = DenseMatrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a.get(i, p) * b.get(p, j);
                }
                out.set(i, j, s);
            }
        }
        out
    }

    #[test]
    fn matmul_identity() {
        let a = DenseMatrix::from_fn(5, 5, |i, j| (i * 5 + j) as f64);
        let i = DenseMatrix::identity(5);
        assert_eq!(matmul(&a, &i), a);
        assert_eq!(matmul(&i, &a), a);
    }

    #[test]
    fn matmul_rectangular_known() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = DenseMatrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.row(0), &[58.0, 64.0]);
        assert_eq!(c.row(1), &[139.0, 154.0]);
    }

    #[test]
    fn gram_matches_explicit() {
        let a = DenseMatrix::from_fn(7, 4, |i, j| ((i * 3 + j * 5) % 11) as f64 - 5.0);
        let g = gram(&a);
        let expect = matmul(&a.transpose(), &a);
        assert!(g.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn tr_matmul_matches_explicit() {
        let a = DenseMatrix::from_fn(6, 3, |i, j| (i + j) as f64);
        let b = DenseMatrix::from_fn(6, 2, |i, j| (i * 2 + j) as f64);
        let out = tr_matmul(&a, &b);
        let expect = matmul(&a.transpose(), &b);
        assert!(out.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn parallel_matches_sequential_large() {
        let a = DenseMatrix::from_fn(130, 70, |i, j| ((i * 7 + j) % 13) as f64 - 6.0);
        let b = DenseMatrix::from_fn(70, 90, |i, j| ((i * 5 + j) % 17) as f64 - 8.0);
        let p = matmul_parallel(&a, &b);
        let s = matmul(&a, &b);
        assert!(p.max_abs_diff(&s) < 1e-9);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dims_panic() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(4, 2);
        let _ = matmul(&a, &b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_blocked_matches_naive(m in 1usize..20, k in 1usize..20, n in 1usize..20, seed in 0u64..100) {
            let a = DenseMatrix::from_fn(m, k, |i, j| ((i as u64 * 13 + j as u64 * 7 + seed) % 19) as f64 - 9.0);
            let b = DenseMatrix::from_fn(k, n, |i, j| ((i as u64 * 5 + j as u64 * 11 + seed) % 23) as f64 - 11.0);
            let fast = matmul(&a, &b);
            let slow = naive(&a, &b);
            prop_assert!(fast.max_abs_diff(&slow) < 1e-9);
        }

        #[test]
        fn prop_matmul_associates_with_vector(m in 1usize..10, k in 1usize..10, n in 1usize..10) {
            // (A * B) x == A * (B x)
            let a = DenseMatrix::from_fn(m, k, |i, j| (i as f64 - j as f64) / 3.0);
            let b = DenseMatrix::from_fn(k, n, |i, j| (i * j) as f64 / 5.0);
            let x: Vec<f64> = (0..n).map(|i| i as f64 + 0.5).collect();
            let lhs = matmul(&a, &b).matvec(&x);
            let rhs = a.matvec(&b.matvec(&x));
            for (l, r) in lhs.iter().zip(&rhs) {
                prop_assert!((l - r).abs() < 1e-9 * (1.0 + r.abs()));
            }
        }
    }
}
