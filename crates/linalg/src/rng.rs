//! Small deterministic random-number utilities.
//!
//! A xorshift64* generator plus Box–Muller Gaussian and Zipf samplers. We
//! keep these in-crate (rather than pulling `rand_distr`) so the linalg crate
//! stays dependency-light and sampling is bit-reproducible across platforms.

/// xorshift64* PRNG. Fast, decent quality, fully deterministic.
#[derive(Debug, Clone)]
pub struct XorShiftRng {
    state: u64,
    /// Cached second Gaussian from the last Box–Muller draw.
    spare: Option<f64>,
}

impl XorShiftRng {
    /// Creates a generator from a seed (0 is remapped to a fixed constant).
    pub fn new(seed: u64) -> Self {
        XorShiftRng {
            state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
            spare: None,
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[inline]
    pub fn next_usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "next_usize range must be non-empty");
        (self.next_u64() % n as u64) as usize
    }

    /// Standard normal via Box–Muller (caches the spare value).
    pub fn next_gaussian(&mut self) -> f64 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        // Avoid log(0).
        let u1 = loop {
            let u = self.next_f64();
            if u > 1e-300 {
                break u;
            }
        };
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_usize(i + 1);
            xs.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (reservoir sampling).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut res: Vec<usize> = (0..k).collect();
        for i in k..n {
            let j = self.next_usize(i + 1);
            if j < k {
                res[j] = i;
            }
        }
        res
    }
}

/// Zipf-distributed sampler over `{0, .., n-1}` with exponent `s`.
///
/// Uses an inverse-CDF table; construction is `O(n)`, sampling `O(log n)`.
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a Zipf distribution over `n` ranks with exponent `s > 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(s);
            cdf.push(acc);
        }
        let norm = acc;
        for c in &mut cdf {
            *c /= norm;
        }
        Zipf { cdf }
    }

    /// Draws a rank in `[0, n)`; rank 0 is the most frequent.
    pub fn sample(&self, rng: &mut XorShiftRng) -> usize {
        let u = rng.next_f64();
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_sequences() {
        let mut a = XorShiftRng::new(42);
        let mut b = XorShiftRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = XorShiftRng::new(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {}", mean);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = XorShiftRng::new(11);
        let n = 50_000;
        let (mut m1, mut m2) = (0.0, 0.0);
        for _ in 0..n {
            let g = rng.next_gaussian();
            m1 += g;
            m2 += g * g;
        }
        m1 /= n as f64;
        m2 /= n as f64;
        assert!(m1.abs() < 0.02, "mean {}", m1);
        assert!((m2 - 1.0).abs() < 0.03, "var {}", m2);
    }

    #[test]
    fn next_usize_bounds() {
        let mut rng = XorShiftRng::new(3);
        for _ in 0..1000 {
            assert!(rng.next_usize(7) < 7);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = XorShiftRng::new(5);
        let mut xs: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut rng = XorShiftRng::new(9);
        let idx = rng.sample_indices(100, 10);
        assert_eq!(idx.len(), 10);
        let mut s = idx.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 10);
        assert!(idx.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_indices_k_exceeds_n() {
        let mut rng = XorShiftRng::new(10);
        assert_eq!(rng.sample_indices(3, 10).len(), 3);
    }

    #[test]
    fn zipf_head_heavier_than_tail() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = XorShiftRng::new(13);
        let mut counts = vec![0usize; 1000];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(
            counts[0] > counts[99] * 5,
            "head {} tail {}",
            counts[0],
            counts[99]
        );
        // Rough Zipf check: rank-0 frequency about 1/H_n.
        let hn: f64 = (1..=1000).map(|r| 1.0 / r as f64).sum();
        let expect = 20_000.0 / hn;
        assert!((counts[0] as f64 - expect).abs() < expect * 0.2);
    }
}
