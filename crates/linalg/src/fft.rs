//! Radix-2 Cooley–Tukey FFT (1-D and 2-D) and FFT-based convolution.
//!
//! This backs the FFT physical implementation of the `Convolver` operator
//! (§3, Fig. 7): cost `O(d·b·n² log n)` independent of the filter size `k`,
//! which is what makes it win for large filters.

use std::ops::{Add, Mul, Sub};

/// Minimal complex number (we avoid a dependency for two fields).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// `re + im·i`.
    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Magnitude.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

/// Next power of two `>= n` (and `>= 1`).
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place iterative radix-2 FFT. `inverse` selects the inverse transform
/// (including the `1/n` scaling).
///
/// # Panics
/// Panics if the length is not a power of two.
pub fn fft_inplace(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            buf.swap(i, j);
        }
    }
    // Butterflies. The twiddle factors for a stage are the same for every
    // `start` block, so they are generated once per stage — by the exact
    // `w = w * wlen` recurrence the serial loop used, keeping the values
    // bit-identical — and the per-block butterfly becomes a data-parallel
    // pass over the twiddle table (see [`butterfly`]).
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut twiddles: Vec<Complex> = Vec::with_capacity(n / 2);
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::new(ang.cos(), ang.sin());
        twiddles.clear();
        let mut w = Complex::new(1.0, 0.0);
        for _ in 0..len / 2 {
            twiddles.push(w);
            w = w * wlen;
        }
        for start in (0..n).step_by(len) {
            butterfly(&mut buf[start..start + len], &twiddles);
        }
        len <<= 1;
    }
    if inverse {
        let inv = 1.0 / n as f64;
        for c in buf {
            c.re *= inv;
            c.im *= inv;
        }
    }
}

/// One radix-2 butterfly pass over a `len`-element block, with the stage's
/// precomputed twiddle table (`len / 2` entries). Each index `i` reads
/// `(block[i], block[i + half])` and writes `(u + v, u - v)` with
/// `v = block[i + half] * w_i` — indices are independent, so the pass is
/// data-parallel. Dispatches to the scalar reference under
/// `--features scalar-kernels`, otherwise to the 2-wide unrolled variant;
/// both compute the identical per-index expressions, so outputs are
/// bit-identical (asserted by `butterfly_simd_matches_scalar_exactly`).
#[inline]
fn butterfly(block: &mut [Complex], twiddles: &[Complex]) {
    #[cfg(feature = "scalar-kernels")]
    butterfly_scalar(block, twiddles);
    #[cfg(not(feature = "scalar-kernels"))]
    butterfly_simd(block, twiddles);
}

/// Scalar reference butterfly pass (the original serial loop body, minus
/// the twiddle recurrence, which the caller hoists).
#[doc(hidden)]
pub fn butterfly_scalar(block: &mut [Complex], twiddles: &[Complex]) {
    let half = block.len() / 2;
    let (lo, hi) = block.split_at_mut(half);
    for ((a, b), w) in lo.iter_mut().zip(hi.iter_mut()).zip(twiddles) {
        let u = *a;
        let v = *b * *w;
        *a = u + v;
        *b = u - v;
    }
}

/// 2-wide unrolled butterfly pass on the re/im components directly: two
/// independent butterflies per iteration, eight multiplies LLVM packs into
/// vector lanes. Per-index arithmetic is exactly [`butterfly_scalar`]'s.
#[doc(hidden)]
pub fn butterfly_simd(block: &mut [Complex], twiddles: &[Complex]) {
    let half = block.len() / 2;
    let (lo, hi) = block.split_at_mut(half);
    let pairs = half - half % 2;
    let mut i = 0;
    while i < pairs {
        let (w0, w1) = (twiddles[i], twiddles[i + 1]);
        let (u0, u1) = (lo[i], lo[i + 1]);
        let (b0, b1) = (hi[i], hi[i + 1]);
        let v0 = Complex::new(b0.re * w0.re - b0.im * w0.im, b0.re * w0.im + b0.im * w0.re);
        let v1 = Complex::new(b1.re * w1.re - b1.im * w1.im, b1.re * w1.im + b1.im * w1.re);
        lo[i] = Complex::new(u0.re + v0.re, u0.im + v0.im);
        lo[i + 1] = Complex::new(u1.re + v1.re, u1.im + v1.im);
        hi[i] = Complex::new(u0.re - v0.re, u0.im - v0.im);
        hi[i + 1] = Complex::new(u1.re - v1.re, u1.im - v1.im);
        i += 2;
    }
    if i < half {
        let w = twiddles[i];
        let u = lo[i];
        let v = hi[i] * w;
        lo[i] = u + v;
        hi[i] = u - v;
    }
}

/// Forward FFT of a real signal, zero-padded to the next power of two at
/// least `min_len`.
pub fn rfft(signal: &[f64], min_len: usize) -> Vec<Complex> {
    let n = next_pow2(min_len.max(signal.len()));
    let mut buf = vec![Complex::default(); n];
    for (b, &s) in buf.iter_mut().zip(signal) {
        b.re = s;
    }
    fft_inplace(&mut buf, false);
    buf
}

/// Linear convolution of two real signals via FFT. Output length is
/// `a.len() + b.len() - 1`.
pub fn convolve_fft(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return vec![];
    }
    let out_len = a.len() + b.len() - 1;
    let mut fa = rfft(a, out_len);
    let fb = rfft(b, out_len);
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x = *x * *y;
    }
    fft_inplace(&mut fa, true);
    fa[..out_len].iter().map(|c| c.re).collect()
}

/// Direct (naive) linear convolution, used as the oracle in tests and for
/// tiny signals where FFT overhead dominates.
pub fn convolve_direct(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return vec![];
    }
    let mut out = vec![0.0; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        if x == 0.0 {
            continue;
        }
        for (j, &y) in b.iter().enumerate() {
            out[i + j] += x * y;
        }
    }
    out
}

/// 2-D FFT of a row-major `rows × cols` grid, in place. Both dims must be
/// powers of two.
pub fn fft2_inplace(grid: &mut [Complex], rows: usize, cols: usize, inverse: bool) {
    assert_eq!(grid.len(), rows * cols);
    // Rows.
    for r in 0..rows {
        fft_inplace(&mut grid[r * cols..(r + 1) * cols], inverse);
    }
    // Columns via a scratch buffer.
    let mut col = vec![Complex::default(); rows];
    for c in 0..cols {
        for r in 0..rows {
            col[r] = grid[r * cols + c];
        }
        fft_inplace(&mut col, inverse);
        for r in 0..rows {
            grid[r * cols + c] = col[r];
        }
    }
}

/// "Valid"-mode 2-D cross-correlation of an `n×n` image with a `k×k` filter
/// via FFT; output is `(n-k+1) × (n-k+1)`. This is what a CNN-style
/// convolution layer computes.
pub fn correlate2d_fft(image: &[f64], n: usize, filter: &[f64], k: usize) -> Vec<f64> {
    assert_eq!(image.len(), n * n);
    assert_eq!(filter.len(), k * k);
    assert!(k <= n, "filter larger than image");
    let m = n - k + 1;
    let rows = next_pow2(n);
    let cols = next_pow2(n);
    let mut fi = vec![Complex::default(); rows * cols];
    for r in 0..n {
        for c in 0..n {
            fi[r * cols + c].re = image[r * n + c];
        }
    }
    // Correlation = convolution with the flipped filter; place the flipped
    // filter so that full-convolution index (k-1+r, k-1+c) is output (r, c).
    let mut ff = vec![Complex::default(); rows * cols];
    for r in 0..k {
        for c in 0..k {
            ff[r * cols + c].re = filter[(k - 1 - r) * k + (k - 1 - c)];
        }
    }
    fft2_inplace(&mut fi, rows, cols, false);
    fft2_inplace(&mut ff, rows, cols, false);
    for (a, b) in fi.iter_mut().zip(&ff) {
        *a = *a * *b;
    }
    fft2_inplace(&mut fi, rows, cols, true);
    let mut out = vec![0.0; m * m];
    for r in 0..m {
        for c in 0..m {
            out[r * m + c] = fi[(r + k - 1) * cols + (c + k - 1)].re;
        }
    }
    out
}

/// Direct "valid"-mode 2-D cross-correlation (oracle / small-k path).
pub fn correlate2d_direct(image: &[f64], n: usize, filter: &[f64], k: usize) -> Vec<f64> {
    assert_eq!(image.len(), n * n);
    assert_eq!(filter.len(), k * k);
    assert!(k <= n, "filter larger than image");
    let m = n - k + 1;
    let mut out = vec![0.0; m * m];
    for r in 0..m {
        for c in 0..m {
            let mut s = 0.0;
            for fr in 0..k {
                for fc in 0..k {
                    s += image[(r + fr) * n + (c + fc)] * filter[fr * k + fc];
                }
            }
            out[r * m + c] = s;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() < tol * (1.0 + y.abs()),
                "index {}: {} vs {}",
                i,
                x,
                y
            );
        }
    }

    #[test]
    fn fft_roundtrip() {
        let mut buf: Vec<Complex> = (0..16)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let orig = buf.clone();
        fft_inplace(&mut buf, false);
        fft_inplace(&mut buf, true);
        for (a, b) in buf.iter().zip(&orig) {
            assert!((a.re - b.re).abs() < 1e-12);
            assert!((a.im - b.im).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut buf = vec![Complex::default(); 8];
        buf[0].re = 1.0;
        fft_inplace(&mut buf, false);
        for c in &buf {
            assert!((c.re - 1.0).abs() < 1e-12 && c.im.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_parseval() {
        let signal: Vec<f64> = (0..32).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();
        let spec = rfft(&signal, 32);
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let freq_energy: f64 = spec.iter().map(|c| c.abs().powi(2)).sum::<f64>() / 32.0;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy);
    }

    /// The SIMD butterfly must match the scalar reference bit-for-bit on
    /// deterministic inputs, across odd/even half sizes.
    #[test]
    fn butterfly_simd_matches_scalar_exactly() {
        for half in [1usize, 2, 3, 4, 7, 8, 16] {
            let len = half * 2;
            let block: Vec<Complex> = (0..len)
                .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
                .collect();
            let twiddles: Vec<Complex> = (0..half)
                .map(|i| {
                    let ang = -2.0 * std::f64::consts::PI * i as f64 / len as f64;
                    Complex::new(ang.cos(), ang.sin())
                })
                .collect();
            let mut scalar = block.clone();
            let mut simd = block.clone();
            butterfly_scalar(&mut scalar, &twiddles);
            butterfly_simd(&mut simd, &twiddles);
            for (i, (s, v)) in scalar.iter().zip(&simd).enumerate() {
                assert_eq!(s.re.to_bits(), v.re.to_bits(), "half={half} idx={i} re");
                assert_eq!(s.im.to_bits(), v.im.to_bits(), "half={half} idx={i} im");
            }
        }
    }

    /// The hoisted twiddle table + kernel dispatch must reproduce the
    /// original serial butterfly loop bit-for-bit.
    #[test]
    fn fft_matches_serial_reference_exactly() {
        fn fft_serial(buf: &mut [Complex], inverse: bool) {
            let n = buf.len();
            let mut j = 0usize;
            for i in 1..n {
                let mut bit = n >> 1;
                while j & bit != 0 {
                    j ^= bit;
                    bit >>= 1;
                }
                j |= bit;
                if i < j {
                    buf.swap(i, j);
                }
            }
            let sign = if inverse { 1.0 } else { -1.0 };
            let mut len = 2;
            while len <= n {
                let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
                let wlen = Complex::new(ang.cos(), ang.sin());
                for start in (0..n).step_by(len) {
                    let mut w = Complex::new(1.0, 0.0);
                    for i in 0..len / 2 {
                        let u = buf[start + i];
                        let v = buf[start + i + len / 2] * w;
                        buf[start + i] = u + v;
                        buf[start + i + len / 2] = u - v;
                        w = w * wlen;
                    }
                }
                len <<= 1;
            }
            if inverse {
                let inv = 1.0 / n as f64;
                for c in buf {
                    c.re *= inv;
                    c.im *= inv;
                }
            }
        }
        for log in 1u32..8 {
            let n = 1usize << log;
            for inverse in [false, true] {
                let init: Vec<Complex> = (0..n)
                    .map(|i| Complex::new((i as f64 * 0.31).sin() * 3.0, (i as f64 * 0.17).cos()))
                    .collect();
                let mut fast = init.clone();
                let mut slow = init;
                fft_inplace(&mut fast, inverse);
                fft_serial(&mut slow, inverse);
                for (i, (a, b)) in fast.iter().zip(&slow).enumerate() {
                    assert_eq!(a.re.to_bits(), b.re.to_bits(), "n={n} idx={i} re");
                    assert_eq!(a.im.to_bits(), b.im.to_bits(), "n={n} idx={i} im");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_pow2() {
        let mut buf = vec![Complex::default(); 6];
        fft_inplace(&mut buf, false);
    }

    #[test]
    fn convolution_known() {
        let out = convolve_fft(&[1.0, 2.0, 3.0], &[0.0, 1.0, 0.5]);
        assert_close(&out, &[0.0, 1.0, 2.5, 4.0, 1.5], 1e-10);
    }

    #[test]
    fn convolution_empty() {
        assert!(convolve_fft(&[], &[1.0]).is_empty());
        assert!(convolve_direct(&[1.0], &[]).is_empty());
    }

    #[test]
    fn correlate2d_identity_filter() {
        // 1x1 filter of value 2 just scales the image.
        let img: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let out = correlate2d_fft(&img, 4, &[2.0], 1);
        let expect: Vec<f64> = img.iter().map(|v| v * 2.0).collect();
        assert_close(&out, &expect, 1e-10);
    }

    #[test]
    fn correlate2d_fft_matches_direct() {
        let n = 12;
        let k = 4;
        let img: Vec<f64> = (0..n * n).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
        let fil: Vec<f64> = (0..k * k).map(|i| ((i * 5) % 3) as f64 - 1.0).collect();
        let fast = correlate2d_fft(&img, n, &fil, k);
        let slow = correlate2d_direct(&img, n, &fil, k);
        assert_close(&fast, &slow, 1e-9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_conv_fft_matches_direct(
            a in proptest::collection::vec(-5.0f64..5.0, 1..40),
            b in proptest::collection::vec(-5.0f64..5.0, 1..40),
        ) {
            let fast = convolve_fft(&a, &b);
            let slow = convolve_direct(&a, &b);
            prop_assert_eq!(fast.len(), slow.len());
            for (x, y) in fast.iter().zip(&slow) {
                prop_assert!((x - y).abs() < 1e-8 * (1.0 + y.abs()));
            }
        }

        #[test]
        fn prop_conv_commutative(
            a in proptest::collection::vec(-3.0f64..3.0, 1..20),
            b in proptest::collection::vec(-3.0f64..3.0, 1..20),
        ) {
            let ab = convolve_fft(&a, &b);
            let ba = convolve_fft(&b, &a);
            for (x, y) in ab.iter().zip(&ba) {
                prop_assert!((x - y).abs() < 1e-8 * (1.0 + y.abs()));
            }
        }
    }
}

#[cfg(test)]
mod proptests_2d {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// 2-D FFT round-trip is the identity.
        #[test]
        fn prop_fft2_roundtrip(rows_log in 1u32..4, cols_log in 1u32..4, seed in 0u64..200) {
            let rows = 1usize << rows_log;
            let cols = 1usize << cols_log;
            let mut grid: Vec<Complex> = (0..rows * cols)
                .map(|i| {
                    let h = (i as u64 + 1).wrapping_mul(seed + 17);
                    Complex::new(((h % 100) as f64) / 10.0 - 5.0, ((h % 37) as f64) / 5.0)
                })
                .collect();
            let orig = grid.clone();
            fft2_inplace(&mut grid, rows, cols, false);
            fft2_inplace(&mut grid, rows, cols, true);
            for (a, b) in grid.iter().zip(&orig) {
                prop_assert!((a.re - b.re).abs() < 1e-9);
                prop_assert!((a.im - b.im).abs() < 1e-9);
            }
        }

        /// Valid-mode correlation agrees with the direct oracle across
        /// random image/filter sizes.
        #[test]
        fn prop_correlate2d_matches_direct(n in 4usize..14, k in 1usize..5, seed in 0u64..200) {
            let k = k.min(n);
            let img: Vec<f64> = (0..n * n)
                .map(|i| (((i as u64 + seed) * 2654435761) % 13) as f64 - 6.0)
                .collect();
            let fil: Vec<f64> = (0..k * k)
                .map(|i| (((i as u64 + seed) * 40503) % 7) as f64 - 3.0)
                .collect();
            let fast = correlate2d_fft(&img, n, &fil, k);
            let slow = correlate2d_direct(&img, n, &fil, k);
            for (a, b) in fast.iter().zip(&slow) {
                prop_assert!((a - b).abs() < 1e-8 * (1.0 + b.abs()));
            }
        }
    }
}
