//! Cholesky factorization for symmetric positive-definite systems.
//!
//! Used by the distributed exact solver: workers tree-aggregate the Gram
//! matrix `A^T A` (+ ridge) and the driver solves the normal equations
//! `(A^T A + λI) X = A^T B` with one local Cholesky.

use crate::dense::DenseMatrix;

/// Error returned when a matrix is not (numerically) positive definite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CholeskyError {
    /// Pivot index at which factorization failed.
    pub pivot: usize,
}

impl std::fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix is not positive definite (non-positive pivot at {})",
            self.pivot
        )
    }
}

impl std::error::Error for CholeskyError {}

/// Lower-triangular Cholesky factor `L` with `L L^T = A`.
#[derive(Debug)]
pub struct Cholesky {
    l: DenseMatrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    pub fn new(a: &DenseMatrix) -> Result<Self, CholeskyError> {
        let n = a.rows();
        assert_eq!(a.cols(), n, "Cholesky requires a square matrix");
        let mut l = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = a.get(i, j);
                for p in 0..j {
                    s -= l.get(i, p) * l.get(j, p);
                }
                if i == j {
                    if s <= 0.0 || !s.is_finite() {
                        return Err(CholeskyError { pivot: i });
                    }
                    l.set(i, j, s.sqrt());
                } else {
                    l.set(i, j, s / l.get(j, j));
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &DenseMatrix {
        &self.l
    }

    /// Solves `A X = B` via forward/back substitution.
    pub fn solve(&self, b: &DenseMatrix) -> DenseMatrix {
        let n = self.l.rows();
        assert_eq!(b.rows(), n, "rhs row mismatch");
        let k = b.cols();
        // Forward: L Y = B.
        let mut y = DenseMatrix::zeros(n, k);
        for j in 0..k {
            for i in 0..n {
                let mut s = b.get(i, j);
                for p in 0..i {
                    s -= self.l.get(i, p) * y.get(p, j);
                }
                y.set(i, j, s / self.l.get(i, i));
            }
        }
        // Backward: L^T X = Y.
        let mut x = DenseMatrix::zeros(n, k);
        for j in 0..k {
            for i in (0..n).rev() {
                let mut s = y.get(i, j);
                for p in i + 1..n {
                    s -= self.l.get(p, i) * x.get(p, j);
                }
                x.set(i, j, s / self.l.get(i, i));
            }
        }
        x
    }
}

/// Solves the ridge-regularized normal equations `(G + λI) X = R`.
///
/// Retries with growing regularization if `G` is numerically semi-definite,
/// which happens for rank-deficient feature matrices; this mirrors the
/// defensive jitter every production solver applies.
pub fn solve_normal_equations(gram: &DenseMatrix, rhs: &DenseMatrix, lambda: f64) -> DenseMatrix {
    let n = gram.rows();
    let mut reg = lambda.max(0.0);
    // Scale-aware floor for the jitter retries.
    let trace: f64 = (0..n).map(|i| gram.get(i, i)).sum();
    let base = (trace / n.max(1) as f64).max(1e-12);
    for attempt in 0..8 {
        let mut g = gram.clone();
        if reg > 0.0 {
            for i in 0..n {
                let v = g.get(i, i) + reg;
                g.set(i, i, v);
            }
        }
        match Cholesky::new(&g) {
            Ok(ch) => return ch.solve(rhs),
            Err(_) => {
                reg = if reg == 0.0 {
                    base * 1e-10
                } else {
                    reg * 100.0
                };
                let _ = attempt;
            }
        }
    }
    // Hopeless conditioning: return zeros rather than NaNs.
    DenseMatrix::zeros(n, rhs.cols())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gram, matmul};

    fn spd(n: usize, seed: u64) -> DenseMatrix {
        // A^T A + I is SPD for any A.
        let a = DenseMatrix::from_fn(n + 3, n, |i, j| {
            ((i as u64 * 37 + j as u64 * 13 + seed) % 17) as f64 / 4.0 - 2.0
        });
        let mut g = gram(&a);
        for i in 0..n {
            let v = g.get(i, i) + 1.0;
            g.set(i, i, v);
        }
        g
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd(6, 1);
        let ch = Cholesky::new(&a).unwrap();
        let llt = matmul(ch.l(), &ch.l().transpose());
        assert!(llt.max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn solve_matches_direct() {
        let a = spd(5, 2);
        let b = DenseMatrix::from_fn(5, 2, |i, j| (i + j) as f64);
        let x = Cholesky::new(&a).unwrap().solve(&b);
        let ax = matmul(&a, &x);
        assert!(ax.max_abs_diff(&b) < 1e-9);
    }

    #[test]
    fn rejects_indefinite() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(Cholesky::new(&m).is_err());
    }

    #[test]
    fn rejects_negative_definite() {
        let m = DenseMatrix::from_diag(&[-1.0, -2.0]);
        let err = Cholesky::new(&m).unwrap_err();
        assert_eq!(err.pivot, 0);
    }

    #[test]
    fn normal_equations_with_ridge() {
        let a = spd(4, 3);
        let b = DenseMatrix::from_fn(4, 1, |i, _| i as f64);
        let x = solve_normal_equations(&a, &b, 0.0);
        let ax = matmul(&a, &x);
        assert!(ax.max_abs_diff(&b) < 1e-8);
    }

    #[test]
    fn normal_equations_survives_singular_gram() {
        // Rank-1 Gram matrix; plain Cholesky would fail, the jitter retry
        // must still produce a finite solution.
        let g = DenseMatrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let b = DenseMatrix::from_rows(&[&[1.0], &[1.0]]);
        let x = solve_normal_equations(&g, &b, 0.0);
        assert!(x.data().iter().all(|v| v.is_finite()));
        // (G + eps I) x ≈ b means x ≈ [0.5, 0.5] for the rank-1 system.
        assert!((x.get(0, 0) - 0.5).abs() < 1e-3);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::gemm::{gram, matmul};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_solve_roundtrip(n in 1usize..7, seed in 0u64..500) {
            // A = GᵀG + I is SPD; Cholesky solve must invert it.
            let g = DenseMatrix::from_fn(n + 2, n, |i, j| {
                ((i as u64 * 13 + j as u64 * 29 + seed) % 17) as f64 / 4.0 - 2.0
            });
            let mut a = gram(&g);
            for i in 0..n {
                let v = a.get(i, i) + 1.0;
                a.set(i, i, v);
            }
            let b = DenseMatrix::from_fn(n, 2, |i, j| (i + j) as f64 - 1.0);
            let x = Cholesky::new(&a).expect("SPD").solve(&b);
            let ax = matmul(&a, &x);
            prop_assert!(ax.max_abs_diff(&b) < 1e-7);
        }

        #[test]
        fn prop_factor_diagonal_positive(n in 1usize..7, seed in 0u64..500) {
            let g = DenseMatrix::from_fn(n + 2, n, |i, j| {
                ((i as u64 * 7 + j as u64 * 3 + seed) % 13) as f64 / 3.0 - 2.0
            });
            let mut a = gram(&g);
            for i in 0..n {
                let v = a.get(i, i) + 1.0;
                a.set(i, i, v);
            }
            let ch = Cholesky::new(&a).expect("SPD");
            for i in 0..n {
                prop_assert!(ch.l().get(i, i) > 0.0);
            }
        }
    }
}
