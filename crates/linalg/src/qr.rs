//! Householder QR factorization and least-squares solving.
//!
//! This is the workhorse of the "Exact" linear solver (§3, Table 1:
//! `O(nd(d+k))` compute). The factorization is done in place with Householder
//! reflectors; `Q` is never formed explicitly for least squares — reflectors
//! are applied directly to the right-hand side, which is both faster and more
//! accurate.

use crate::dense::DenseMatrix;

/// Compact Householder QR factorization of an `n × d` matrix with `n >= d`.
pub struct QrFactorization {
    /// Packed factor: upper triangle holds `R`, lower part holds the
    /// Householder vectors (with implicit unit diagonal scaling).
    packed: DenseMatrix,
    /// Scalar `tau` coefficients of the reflectors.
    tau: Vec<f64>,
}

impl QrFactorization {
    /// Factors `a` (consumed). Requires `rows >= cols`.
    ///
    /// # Panics
    /// Panics if the matrix is wider than tall.
    pub fn new(mut a: DenseMatrix) -> Self {
        let (n, d) = a.shape();
        assert!(n >= d, "QR requires rows >= cols, got {}x{}", n, d);
        let mut tau = vec![0.0; d];
        for k in 0..d {
            // Compute the norm of the k-th column below the diagonal.
            let mut norm = 0.0;
            for i in k..n {
                let v = a.get(i, k);
                norm += v * v;
            }
            norm = norm.sqrt();
            if norm == 0.0 {
                tau[k] = 0.0;
                continue;
            }
            let alpha = if a.get(k, k) >= 0.0 { -norm } else { norm };
            let akk = a.get(k, k);
            let v0 = akk - alpha;
            // Householder vector v = [v0, a[k+1..n, k]] (stored scaled by v0).
            tau[k] = -v0 / alpha;
            let inv_v0 = 1.0 / v0;
            for i in k + 1..n {
                let v = a.get(i, k) * inv_v0;
                a.set(i, k, v);
            }
            a.set(k, k, alpha);
            // Apply the reflector to the remaining columns:
            // A := (I - tau v v^T) A.
            for j in k + 1..d {
                let mut s = a.get(k, j);
                for i in k + 1..n {
                    s += a.get(i, k) * a.get(i, j);
                }
                s *= tau[k];
                let akj = a.get(k, j);
                a.set(k, j, akj - s);
                for i in k + 1..n {
                    let v = a.get(i, j) - s * a.get(i, k);
                    a.set(i, j, v);
                }
            }
        }
        QrFactorization { packed: a, tau }
    }

    /// The `d × d` upper-triangular factor `R`.
    pub fn r(&self) -> DenseMatrix {
        let d = self.packed.cols();
        let mut r = DenseMatrix::zeros(d, d);
        for i in 0..d {
            for j in i..d {
                r.set(i, j, self.packed.get(i, j));
            }
        }
        r
    }

    /// The thin `n × d` orthonormal factor `Q` formed explicitly.
    pub fn q(&self) -> DenseMatrix {
        let (n, d) = self.packed.shape();
        let mut q = DenseMatrix::zeros(n, d);
        for i in 0..d {
            q.set(i, i, 1.0);
        }
        // Apply reflectors in reverse order: Q = H_0 H_1 ... H_{d-1} I.
        for k in (0..d).rev() {
            if self.tau[k] == 0.0 {
                continue;
            }
            for j in 0..d {
                let mut s = q.get(k, j);
                for i in k + 1..n {
                    s += self.packed.get(i, k) * q.get(i, j);
                }
                s *= self.tau[k];
                let v = q.get(k, j) - s;
                q.set(k, j, v);
                for i in k + 1..n {
                    let v = q.get(i, j) - s * self.packed.get(i, k);
                    q.set(i, j, v);
                }
            }
        }
        q
    }

    /// Applies `Q^T` to a (copied) right-hand-side matrix.
    fn apply_qt(&self, b: &mut DenseMatrix) {
        let (n, d) = self.packed.shape();
        let k_rhs = b.cols();
        assert_eq!(b.rows(), n, "rhs row mismatch");
        for k in 0..d {
            if self.tau[k] == 0.0 {
                continue;
            }
            for j in 0..k_rhs {
                let mut s = b.get(k, j);
                for i in k + 1..n {
                    s += self.packed.get(i, k) * b.get(i, j);
                }
                s *= self.tau[k];
                let v = b.get(k, j) - s;
                b.set(k, j, v);
                for i in k + 1..n {
                    let v = b.get(i, j) - s * self.packed.get(i, k);
                    b.set(i, j, v);
                }
            }
        }
    }

    /// Solves the least-squares problem `min ||A X - B||_F` for `X` (`d × k`).
    pub fn solve(&self, b: &DenseMatrix) -> DenseMatrix {
        let d = self.packed.cols();
        let mut bt = b.clone();
        self.apply_qt(&mut bt);
        // Back-substitute R X = (Q^T B)[0..d].
        let k_rhs = bt.cols();
        let mut x = DenseMatrix::zeros(d, k_rhs);
        for j in 0..k_rhs {
            for i in (0..d).rev() {
                let mut s = bt.get(i, j);
                for p in i + 1..d {
                    s -= self.packed.get(i, p) * x.get(p, j);
                }
                let rii = self.packed.get(i, i);
                x.set(i, j, if rii.abs() > 1e-300 { s / rii } else { 0.0 });
            }
        }
        x
    }
}

/// Convenience: solves `min ||A X - B||_F` by Householder QR.
pub fn lstsq(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    QrFactorization::new(a.clone()).solve(b)
}

/// Solves an upper-triangular system `R x = b` by back substitution.
pub fn solve_upper_triangular(r: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let d = r.rows();
    assert_eq!(r.cols(), d, "R must be square");
    assert_eq!(b.rows(), d, "rhs mismatch");
    let k = b.cols();
    let mut x = DenseMatrix::zeros(d, k);
    for j in 0..k {
        for i in (0..d).rev() {
            let mut s = b.get(i, j);
            for p in i + 1..d {
                s -= r.get(i, p) * x.get(p, j);
            }
            let rii = r.get(i, i);
            x.set(i, j, if rii.abs() > 1e-300 { s / rii } else { 0.0 });
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;
    use proptest::prelude::*;

    fn test_matrix(n: usize, d: usize, seed: u64) -> DenseMatrix {
        DenseMatrix::from_fn(n, d, |i, j| {
            let h = (i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add((j as u64).wrapping_mul(1442695040888963407))
                .wrapping_add(seed);
            ((h >> 33) % 2000) as f64 / 100.0 - 10.0
        })
    }

    #[test]
    fn qr_reconstructs_a() {
        let a = test_matrix(12, 5, 1);
        let f = QrFactorization::new(a.clone());
        let qa = matmul(&f.q(), &f.r());
        assert!(qa.max_abs_diff(&a) < 1e-9, "QR != A");
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let a = test_matrix(20, 6, 2);
        let q = QrFactorization::new(a).q();
        let qtq = matmul(&q.transpose(), &q);
        assert!(qtq.max_abs_diff(&DenseMatrix::identity(6)) < 1e-9);
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = test_matrix(9, 4, 3);
        let r = QrFactorization::new(a).r();
        for i in 0..4 {
            for j in 0..i {
                assert_eq!(r.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn lstsq_recovers_exact_solution() {
        // When B = A X* exactly, least squares must recover X*.
        let a = test_matrix(15, 4, 4);
        let xstar = test_matrix(4, 3, 5);
        let b = matmul(&a, &xstar);
        let x = lstsq(&a, &b);
        assert!(x.max_abs_diff(&xstar) < 1e-8);
    }

    #[test]
    fn lstsq_residual_orthogonal_to_columns() {
        // Normal-equation optimality: A^T (A x - b) = 0.
        let a = test_matrix(18, 5, 6);
        let b = test_matrix(18, 2, 7);
        let x = lstsq(&a, &b);
        let resid = &matmul(&a, &x) - &b;
        let atr = matmul(&a.transpose(), &resid);
        assert!(
            atr.frobenius_norm() < 1e-7,
            "residual not orthogonal: {}",
            atr.frobenius_norm()
        );
    }

    #[test]
    fn square_system_solves_exactly() {
        let a = DenseMatrix::from_rows(&[&[4.0, 1.0], &[2.0, 3.0]]);
        let b = DenseMatrix::from_rows(&[&[1.0], &[2.0]]);
        let x = lstsq(&a, &b);
        let ax = matmul(&a, &x);
        assert!(ax.max_abs_diff(&b) < 1e-12);
    }

    #[test]
    fn upper_triangular_solve() {
        let r = DenseMatrix::from_rows(&[&[2.0, 1.0, 0.5], &[0.0, 3.0, -1.0], &[0.0, 0.0, 4.0]]);
        let b = DenseMatrix::from_rows(&[&[1.0], &[2.0], &[8.0]]);
        let x = solve_upper_triangular(&r, &b);
        let rx = matmul(&r, &x);
        assert!(rx.max_abs_diff(&b) < 1e-12);
    }

    #[test]
    fn rank_deficient_does_not_blow_up() {
        // Two identical columns: solution should still be finite.
        let a = DenseMatrix::from_fn(10, 3, |i, j| {
            if j == 2 {
                i as f64
            } else {
                (i * (j + 1)) as f64
            }
        });
        let b = DenseMatrix::from_fn(10, 1, |i, _| i as f64);
        let x = lstsq(&a, &b);
        assert!(x.data().iter().all(|v| v.is_finite()));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_qr_reconstruction(n in 3usize..16, dd in 1usize..8, seed in 0u64..500) {
            let d = dd.min(n);
            let a = test_matrix(n, d, seed);
            let f = QrFactorization::new(a.clone());
            let qa = matmul(&f.q(), &f.r());
            prop_assert!(qa.max_abs_diff(&a) < 1e-8);
        }

        #[test]
        fn prop_lstsq_never_worse_than_zero(n in 4usize..14, seed in 0u64..500) {
            let a = test_matrix(n, 3, seed);
            let b = test_matrix(n, 1, seed + 99);
            let x = lstsq(&a, &b);
            let resid = &matmul(&a, &x) - &b;
            // Optimal residual can't exceed ||b|| (x = 0 achieves that).
            prop_assert!(resid.frobenius_norm() <= b.frobenius_norm() + 1e-9);
        }
    }
}
