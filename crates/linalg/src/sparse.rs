//! Sparse vectors and CSR matrices.
//!
//! Text featurization (§2's `TermFrequency`, `CommonSparseFeatures`) produces
//! sparse vectors — the Amazon workload is 0.1% dense at d = 100k — and the
//! sparse L-BFGS solver exploits them for `O(nnz)` gradient evaluation, which
//! is the entire reason it wins Figure 6's Amazon panel.

use crate::dense::DenseMatrix;

/// A sparse vector with strictly increasing indices.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseVector {
    dim: usize,
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl SparseVector {
    /// Builds from parallel `(index, value)` arrays.
    ///
    /// # Panics
    /// Panics if lengths mismatch, indices are not strictly increasing, or
    /// any index is out of range.
    pub fn new(dim: usize, indices: Vec<u32>, values: Vec<f64>) -> Self {
        assert_eq!(indices.len(), values.len(), "index/value length mismatch");
        for w in indices.windows(2) {
            assert!(w[0] < w[1], "indices must be strictly increasing");
        }
        if let Some(&last) = indices.last() {
            assert!((last as usize) < dim, "index {} out of dim {}", last, dim);
        }
        SparseVector {
            dim,
            indices,
            values,
        }
    }

    /// Builds from unsorted pairs, merging duplicate indices by summation.
    pub fn from_pairs(dim: usize, mut pairs: Vec<(u32, f64)>) -> Self {
        pairs.sort_unstable_by_key(|p| p.0);
        let mut indices = Vec::with_capacity(pairs.len());
        let mut values: Vec<f64> = Vec::with_capacity(pairs.len());
        for (i, v) in pairs {
            assert!((i as usize) < dim, "index {} out of dim {}", i, dim);
            if indices.last() == Some(&i) {
                *values.last_mut().expect("non-empty") += v;
            } else {
                indices.push(i);
                values.push(v);
            }
        }
        SparseVector {
            dim,
            indices,
            values,
        }
    }

    /// The all-zeros vector of the given dimension.
    pub fn empty(dim: usize) -> Self {
        SparseVector {
            dim,
            indices: vec![],
            values: vec![],
        }
    }

    /// Dimensionality of the ambient space.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored (structurally non-zero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Stored indices.
    #[inline]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Stored values.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterator over `(index, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.indices
            .iter()
            .zip(&self.values)
            .map(|(&i, &v)| (i as usize, v))
    }

    /// Value at `i` (zero if not stored).
    pub fn get(&self, i: usize) -> f64 {
        match self.indices.binary_search(&(i as u32)) {
            Ok(pos) => self.values[pos],
            Err(_) => 0.0,
        }
    }

    /// Dot product with a dense slice of the same dimension.
    pub fn dot_dense(&self, dense: &[f64]) -> f64 {
        debug_assert_eq!(dense.len(), self.dim);
        self.iter().map(|(i, v)| v * dense[i]).sum()
    }

    /// Sparse-sparse dot product (two-pointer merge).
    pub fn dot(&self, other: &SparseVector) -> f64 {
        debug_assert_eq!(self.dim, other.dim);
        let (mut a, mut b, mut s) = (0usize, 0usize, 0.0);
        while a < self.indices.len() && b < other.indices.len() {
            match self.indices[a].cmp(&other.indices[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    s += self.values[a] * other.values[b];
                    a += 1;
                    b += 1;
                }
            }
        }
        s
    }

    /// `dense += alpha * self`.
    pub fn axpy_into(&self, alpha: f64, dense: &mut [f64]) {
        debug_assert_eq!(dense.len(), self.dim);
        for (i, v) in self.iter() {
            dense[i] += alpha * v;
        }
    }

    /// Squared Euclidean norm.
    pub fn norm2_sq(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum()
    }

    /// L2-normalized copy (zero vector stays zero).
    pub fn l2_normalized(&self) -> SparseVector {
        let n = self.norm2_sq().sqrt();
        if n == 0.0 {
            return self.clone();
        }
        let inv = 1.0 / n;
        SparseVector {
            dim: self.dim,
            indices: self.indices.clone(),
            values: self.values.iter().map(|v| v * inv).collect(),
        }
    }

    /// Densifies into a `Vec<f64>`.
    pub fn to_dense(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.dim];
        for (i, v) in self.iter() {
            out[i] = v;
        }
        out
    }

    /// Keeps only the entries whose index appears in `keep` (a sorted slice),
    /// remapping index `keep[j] -> j`. This implements
    /// `CommonSparseFeatures`' projection step.
    pub fn project(&self, keep: &[u32]) -> SparseVector {
        let mut indices = Vec::new();
        let mut values = Vec::new();
        let mut k = 0usize;
        for (idx, v) in self.indices.iter().zip(&self.values) {
            while k < keep.len() && keep[k] < *idx {
                k += 1;
            }
            if k < keep.len() && keep[k] == *idx {
                indices.push(k as u32);
                values.push(*v);
            }
        }
        SparseVector {
            dim: keep.len(),
            indices,
            values,
        }
    }

    /// Approximate in-memory footprint in bytes.
    pub fn nbytes(&self) -> usize {
        self.indices.len() * 4 + self.values.len() * 8 + std::mem::size_of::<Self>()
    }
}

/// Compressed sparse row matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from row sparse vectors.
    ///
    /// # Panics
    /// Panics if the rows disagree on dimension.
    pub fn from_rows(rows: &[SparseVector]) -> Self {
        let cols = rows.first().map_or(0, |r| r.dim());
        let nnz: usize = rows.iter().map(|r| r.nnz()).sum();
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        let mut col_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        row_ptr.push(0);
        for r in rows {
            assert_eq!(r.dim(), cols, "row dimension mismatch");
            col_idx.extend_from_slice(r.indices());
            values.extend_from_slice(r.values());
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            rows: rows.len(),
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of structural non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The `(col_indices, values)` slice pair of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Sparse matrix × dense vector.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows)
            .map(|i| {
                let (idx, vals) = self.row(i);
                idx.iter().zip(vals).map(|(&j, &v)| v * x[j as usize]).sum()
            })
            .collect()
    }

    /// Transposed sparse matrix × dense vector (`A^T x`).
    pub fn tr_matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "tr_matvec dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            let xi = x[i];
            if xi == 0.0 {
                continue;
            }
            let (idx, vals) = self.row(i);
            for (&j, &v) in idx.iter().zip(vals) {
                out[j as usize] += xi * v;
            }
        }
        out
    }

    /// Sparse matrix × dense matrix (`A · X`, with `X: cols × k`).
    pub fn matmul_dense(&self, x: &DenseMatrix) -> DenseMatrix {
        assert_eq!(x.rows(), self.cols, "matmul dimension mismatch");
        let k = x.cols();
        let mut out = DenseMatrix::zeros(self.rows, k);
        for i in 0..self.rows {
            let (idx, vals) = self.row(i);
            let orow = out.row_mut(i);
            for (&j, &v) in idx.iter().zip(vals) {
                let xrow = x.row(j as usize);
                for (o, &xv) in orow.iter_mut().zip(xrow) {
                    *o += v * xv;
                }
            }
        }
        out
    }

    /// Fraction of stored entries (`nnz / (rows*cols)`).
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
        }
    }

    /// Densifies (for tests / tiny matrices).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let (idx, vals) = self.row(i);
            for (&j, &v) in idx.iter().zip(vals) {
                m.set(i, j as usize, v);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sv(dim: usize, pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_pairs(dim, pairs.to_vec())
    }

    #[test]
    fn new_validates() {
        let v = SparseVector::new(5, vec![1, 3], vec![2.0, -1.0]);
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.get(3), -1.0);
        assert_eq!(v.get(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn new_rejects_unsorted() {
        let _ = SparseVector::new(5, vec![3, 1], vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "out of dim")]
    fn new_rejects_out_of_range() {
        let _ = SparseVector::new(3, vec![5], vec![1.0]);
    }

    #[test]
    fn from_pairs_merges_duplicates() {
        let v = sv(10, &[(3, 1.0), (1, 2.0), (3, 4.0)]);
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.get(3), 5.0);
        assert_eq!(v.get(1), 2.0);
    }

    #[test]
    fn dot_products_agree() {
        let a = sv(8, &[(0, 1.0), (3, 2.0), (7, -1.0)]);
        let b = sv(8, &[(3, 4.0), (5, 9.0), (7, 2.0)]);
        assert_eq!(a.dot(&b), 8.0 - 2.0);
        let bd = b.to_dense();
        assert_eq!(a.dot_dense(&bd), a.dot(&b));
    }

    #[test]
    fn axpy_into_dense() {
        let a = sv(4, &[(1, 3.0), (2, -1.0)]);
        let mut d = vec![1.0; 4];
        a.axpy_into(2.0, &mut d);
        assert_eq!(d, vec![1.0, 7.0, -1.0, 1.0]);
    }

    #[test]
    fn l2_normalization() {
        let a = sv(4, &[(0, 3.0), (2, 4.0)]);
        let n = a.l2_normalized();
        assert!((n.norm2_sq() - 1.0).abs() < 1e-12);
        let z = SparseVector::empty(4).l2_normalized();
        assert_eq!(z.nnz(), 0);
    }

    #[test]
    fn projection_remaps() {
        let a = sv(10, &[(1, 1.0), (4, 2.0), (9, 3.0)]);
        let p = a.project(&[4, 7, 9]);
        assert_eq!(p.dim(), 3);
        assert_eq!(p.get(0), 2.0); // old index 4
        assert_eq!(p.get(1), 0.0); // old index 7 absent
        assert_eq!(p.get(2), 3.0); // old index 9
    }

    #[test]
    fn csr_roundtrip_and_matvec() {
        let rows = vec![
            sv(4, &[(0, 1.0), (2, 2.0)]),
            SparseVector::empty(4),
            sv(4, &[(3, -1.0)]),
        ];
        let m = CsrMatrix::from_rows(&rows);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.nnz(), 3);
        let x = vec![1.0, 1.0, 1.0, 1.0];
        assert_eq!(m.matvec(&x), vec![3.0, 0.0, -1.0]);
        let y = vec![1.0, 2.0, 3.0];
        assert_eq!(m.tr_matvec(&y), vec![1.0, 0.0, 2.0, -3.0]);
    }

    #[test]
    fn csr_matmul_dense_matches_dense() {
        let rows = vec![sv(3, &[(0, 2.0), (2, 1.0)]), sv(3, &[(1, -1.0)])];
        let m = CsrMatrix::from_rows(&rows);
        let x = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[2.0, 2.0]]);
        let out = m.matmul_dense(&x);
        let expect = crate::gemm::matmul(&m.to_dense(), &x);
        assert!(out.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn density_computation() {
        let rows = vec![sv(10, &[(0, 1.0)]), sv(10, &[(1, 1.0), (2, 1.0)])];
        let m = CsrMatrix::from_rows(&rows);
        assert!((m.density() - 3.0 / 20.0).abs() < 1e-12);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_sparse_dot_matches_dense(
            pairs_a in proptest::collection::vec((0u32..32, -5.0f64..5.0), 0..16),
            pairs_b in proptest::collection::vec((0u32..32, -5.0f64..5.0), 0..16),
        ) {
            let a = SparseVector::from_pairs(32, pairs_a);
            let b = SparseVector::from_pairs(32, pairs_b);
            let sparse = a.dot(&b);
            let dense = crate::dense::dot(&a.to_dense(), &b.to_dense());
            prop_assert!((sparse - dense).abs() < 1e-9 * (1.0 + dense.abs()));
        }

        #[test]
        fn prop_csr_matvec_matches_dense(
            rows in proptest::collection::vec(
                proptest::collection::vec((0u32..16, -3.0f64..3.0), 0..8), 1..8),
        ) {
            let svs: Vec<SparseVector> = rows.into_iter()
                .map(|p| SparseVector::from_pairs(16, p)).collect();
            let m = CsrMatrix::from_rows(&svs);
            let x: Vec<f64> = (0..16).map(|i| (i as f64) / 3.0 - 2.0).collect();
            let sparse = m.matvec(&x);
            let dense = m.to_dense().matvec(&x);
            for (s, d) in sparse.iter().zip(&dense) {
                prop_assert!((s - d).abs() < 1e-9 * (1.0 + d.abs()));
            }
        }
    }
}
