//! Wall-clock stage accounting for real (thread-pool) execution.

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// One completed stage measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRecord {
    /// Stage label.
    pub stage: String,
    /// Wall-clock seconds.
    pub wall_secs: f64,
    /// Records processed (0 when not applicable).
    pub records: u64,
}

/// Shared ledger of wall-clock stage timings. Cloning shares the ledger.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    records: Arc<Mutex<Vec<StageRecord>>>,
}

impl ExecStats {
    /// Fresh, empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times a closure and records it under `stage`.
    pub fn time<T>(&self, stage: &str, records: u64, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.records.lock().push(StageRecord {
            stage: stage.to_string(),
            wall_secs: start.elapsed().as_secs_f64(),
            records,
        });
        out
    }

    /// Records an externally measured duration.
    pub fn record(&self, stage: &str, wall_secs: f64, records: u64) {
        self.records.lock().push(StageRecord {
            stage: stage.to_string(),
            wall_secs,
            records,
        });
    }

    /// Total wall seconds recorded.
    pub fn total_seconds(&self) -> f64 {
        self.records.lock().iter().map(|r| r.wall_secs).sum()
    }

    /// Snapshot of records.
    pub fn snapshot(&self) -> Vec<StageRecord> {
        self.records.lock().clone()
    }

    /// Sum of wall seconds for stages whose label starts with `prefix`.
    pub fn seconds_for_prefix(&self, prefix: &str) -> f64 {
        self.records
            .lock()
            .iter()
            .filter(|r| r.stage.starts_with(prefix))
            .map(|r| r.wall_secs)
            .sum()
    }

    /// Clears the ledger.
    pub fn reset(&self) {
        self.records.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_records_duration_and_result() {
        let stats = ExecStats::new();
        let out = stats.time("work", 10, || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            42
        });
        assert_eq!(out, 42);
        let snap = stats.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].records, 10);
        assert!(snap[0].wall_secs >= 0.004, "{}", snap[0].wall_secs);
    }

    #[test]
    fn prefix_filtering() {
        let stats = ExecStats::new();
        stats.record("featurize:a", 1.0, 0);
        stats.record("featurize:b", 2.0, 0);
        stats.record("solve", 4.0, 0);
        assert_eq!(stats.seconds_for_prefix("featurize"), 3.0);
        assert_eq!(stats.total_seconds(), 7.0);
    }

    #[test]
    fn clones_share_state() {
        let a = ExecStats::new();
        let b = a.clone();
        b.record("x", 1.0, 1);
        assert_eq!(a.total_seconds(), 1.0);
        a.reset();
        assert_eq!(b.total_seconds(), 0.0);
    }
}
