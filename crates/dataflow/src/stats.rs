//! Wall-clock stage accounting for real (thread-pool) execution.

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// One completed stage measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRecord {
    /// Stage label.
    pub stage: String,
    /// Wall-clock seconds.
    pub wall_secs: f64,
    /// Records processed (0 when not applicable).
    pub records: u64,
}

/// One stage's rolled-up totals (see [`ExecStats::by_stage`]).
#[derive(Debug, Clone, PartialEq)]
pub struct StageTotal {
    /// Stage key: everything before the first `:` of the label (the same
    /// grouping convention as [`SimClock::by_stage`](crate::SimClock::by_stage)).
    pub stage: String,
    /// Total wall seconds across the stage's entries.
    pub wall_secs: f64,
    /// Total records across the stage's entries.
    pub records: u64,
    /// Number of ledger entries rolled into this stage.
    pub entries: u64,
}

/// Shared ledger of wall-clock stage timings. Cloning shares the ledger.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    records: Arc<Mutex<Vec<StageRecord>>>,
}

impl ExecStats {
    /// Fresh, empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times a closure and records it under `stage`.
    pub fn time<T>(&self, stage: &str, records: u64, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.records.lock().push(StageRecord {
            stage: stage.to_string(),
            wall_secs: start.elapsed().as_secs_f64(),
            records,
        });
        out
    }

    /// Records an externally measured duration.
    pub fn record(&self, stage: &str, wall_secs: f64, records: u64) {
        self.records.lock().push(StageRecord {
            stage: stage.to_string(),
            wall_secs,
            records,
        });
    }

    /// Total wall seconds recorded.
    pub fn total_seconds(&self) -> f64 {
        self.records.lock().iter().map(|r| r.wall_secs).sum()
    }

    /// Snapshot of records.
    pub fn snapshot(&self) -> Vec<StageRecord> {
        self.records.lock().clone()
    }

    /// Sum of wall seconds for stages whose label starts with `prefix`.
    pub fn seconds_for_prefix(&self, prefix: &str) -> f64 {
        self.records
            .lock()
            .iter()
            .filter(|r| r.stage.starts_with(prefix))
            .map(|r| r.wall_secs)
            .sum()
    }

    /// Appends every record of `other` into this ledger — rolls up stats
    /// from an independently-built ledger (e.g. a cloned context whose
    /// ledger was replaced rather than shared). Merging a ledger into
    /// itself — including via a sharing clone — is a no-op rather than a
    /// deadlock or a duplication.
    pub fn merge(&self, other: &ExecStats) {
        if Arc::ptr_eq(&self.records, &other.records) {
            return;
        }
        let incoming = other.snapshot();
        self.records.lock().extend(incoming);
    }

    /// Rolls the ledger up per stage, keyed by the label prefix before the
    /// first `:`, in first-seen order.
    pub fn by_stage(&self) -> Vec<StageTotal> {
        let mut out: Vec<StageTotal> = Vec::new();
        for r in self.records.lock().iter() {
            let key = r.stage.split(':').next().unwrap_or(&r.stage);
            match out.iter_mut().find(|t| t.stage == key) {
                Some(t) => {
                    t.wall_secs += r.wall_secs;
                    t.records += r.records;
                    t.entries += 1;
                }
                None => out.push(StageTotal {
                    stage: key.to_string(),
                    wall_secs: r.wall_secs,
                    records: r.records,
                    entries: 1,
                }),
            }
        }
        out
    }

    /// Clears the ledger.
    pub fn reset(&self) {
        self.records.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_records_duration_and_result() {
        let stats = ExecStats::new();
        let out = stats.time("work", 10, || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            42
        });
        assert_eq!(out, 42);
        let snap = stats.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].records, 10);
        assert!(snap[0].wall_secs >= 0.004, "{}", snap[0].wall_secs);
    }

    #[test]
    fn prefix_filtering() {
        let stats = ExecStats::new();
        stats.record("featurize:a", 1.0, 0);
        stats.record("featurize:b", 2.0, 0);
        stats.record("solve", 4.0, 0);
        assert_eq!(stats.seconds_for_prefix("featurize"), 3.0);
        assert_eq!(stats.total_seconds(), 7.0);
    }

    #[test]
    fn merge_rolls_up_foreign_ledgers() {
        let a = ExecStats::new();
        a.record("featurize:sift", 1.0, 10);
        let b = ExecStats::new();
        b.record("featurize:fisher", 2.0, 20);
        b.record("solve", 4.0, 5);
        a.merge(&b);
        assert_eq!(a.snapshot().len(), 3);
        assert_eq!(a.total_seconds(), 7.0);
        // Merging a sharing clone (same ledger) must not duplicate entries.
        let c = a.clone();
        a.merge(&c);
        assert_eq!(a.snapshot().len(), 3);
        // b is untouched by the merge.
        assert_eq!(b.snapshot().len(), 2);
    }

    #[test]
    fn by_stage_groups_on_prefix_with_records() {
        let stats = ExecStats::new();
        stats.record("featurize:a", 1.0, 100);
        stats.record("featurize:b", 2.0, 50);
        stats.record("solve:iter0", 4.0, 0);
        let stages = stats.by_stage();
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].stage, "featurize");
        assert_eq!(stages[0].wall_secs, 3.0);
        assert_eq!(stages[0].records, 150);
        assert_eq!(stages[0].entries, 2);
        assert_eq!(stages[1].stage, "solve");
        assert_eq!(stages[1].wall_secs, 4.0);
    }

    #[test]
    fn clones_share_state() {
        let a = ExecStats::new();
        let b = a.clone();
        b.record("x", 1.0, 1);
        assert_eq!(a.total_seconds(), 1.0);
        a.reset();
        assert_eq!(b.total_seconds(), 0.0);
    }
}
