//! Deterministic, seeded fault injection for the dataflow substrate.
//!
//! The paper's pipelines inherit fault tolerance from Spark's RDD lineage:
//! failed tasks are retried, stragglers are speculatively re-executed, and
//! lost partitions are recomputed from their lineage. This from-scratch
//! engine has to provide (and *test*) that machinery itself, so this module
//! supplies the adversary: a [`FaultPlan`] that decides — as a pure function
//! of a seed and the task's identity — which partition tasks fail, which
//! become stragglers, and which cache entries go missing.
//!
//! Determinism is the point. Every decision is keyed on
//! `(seed, stage, op, partition, attempt)` via splitmix64, so two runs with
//! the same seed inject byte-identical fault schedules, recovery statistics
//! are reproducible in CI, and a failing run can be replayed exactly.
//!
//! The plan only *decides*; the machinery that reacts to it lives where the
//! work happens: per-partition retry accounting in
//! [`collection`](crate::collection), backoff and speculative-copy charges on
//! the [`SimClock`](crate::simclock::SimClock), and lineage recompute of lost
//! cache entries in the `keystone-core` executor.

use crate::rng_util::split_seed;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// What to inject, and how recovery is bounded. Probabilities are per
/// decision point (per partition task, per cache lookup).
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// Seed all decisions derive from; same seed ⇒ same fault schedule.
    pub seed: u64,
    /// Probability that a partition task's next attempt fails.
    pub task_failure_prob: f64,
    /// At most this many consecutive injected failures per task — keeps a
    /// hostile seed from failing a task forever. Raise it past
    /// `retry_limit` to simulate a permanently failing task (which panics).
    pub max_failures_per_task: u32,
    /// Retries the engine tolerates per task before giving up.
    pub retry_limit: u32,
    /// First retry's backoff in simulated seconds; attempt `k` waits
    /// `backoff_base_secs × 2^k` (exponential backoff).
    pub backoff_base_secs: f64,
    /// Probability that a partition task is delayed into a straggler.
    pub straggler_prob: f64,
    /// A straggler runs this many times its natural duration.
    pub straggler_multiplier: f64,
    /// Floor on the injected delay, microseconds. Also the detection
    /// threshold: recovery only speculates on partitions at least this
    /// busy, so micro-scale timer noise never looks like a straggler.
    pub straggler_min_delay_us: u64,
    /// Probability that a cache lookup finds its entry lost (per lookup).
    pub cache_loss_prob: f64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            seed: 0,
            task_failure_prob: 0.0,
            max_failures_per_task: 2,
            retry_limit: 4,
            backoff_base_secs: 1.0,
            straggler_prob: 0.0,
            straggler_multiplier: 4.0,
            straggler_min_delay_us: 2_000,
            cache_loss_prob: 0.0,
        }
    }
}

impl FaultSpec {
    /// A spec that injects nothing (all probabilities zero) under `seed`.
    pub fn new(seed: u64) -> Self {
        FaultSpec {
            seed,
            ..Default::default()
        }
    }

    /// Sets the per-attempt task failure probability.
    pub fn with_task_failures(mut self, prob: f64) -> Self {
        self.task_failure_prob = prob;
        self
    }

    /// Sets the per-task straggler probability.
    pub fn with_stragglers(mut self, prob: f64) -> Self {
        self.straggler_prob = prob;
        self
    }

    /// Sets the per-lookup cache-entry loss probability.
    pub fn with_cache_loss(mut self, prob: f64) -> Self {
        self.cache_loss_prob = prob;
        self
    }

    /// Overrides the straggler delay floor (and detection threshold).
    pub fn with_straggler_min_delay_us(mut self, us: u64) -> Self {
        self.straggler_min_delay_us = us;
        self
    }

    /// Overrides the exponential-backoff base.
    pub fn with_backoff_base_secs(mut self, secs: f64) -> Self {
        self.backoff_base_secs = secs;
        self
    }

    /// Freezes the spec into an injectable plan.
    pub fn into_plan(self) -> FaultPlan {
        FaultPlan::new(self)
    }
}

/// A frozen, cloneable fault schedule. Clones share the spec and the
/// per-key cache-probe counters, so one plan threaded through an
/// `ExecContext` sees every lookup in program order.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    spec: Arc<FaultSpec>,
    /// How many times each cache key has been probed for loss — the probe
    /// index salts the decision so a key isn't lost on every single lookup.
    cache_probes: Arc<Mutex<HashMap<u64, u64>>>,
}

// Domain-separation tags so the three decision streams never correlate.
const DOMAIN_FAILURE: u64 = 1;
const DOMAIN_STRAGGLER: u64 = 2;
const DOMAIN_CACHE: u64 = 3;

impl FaultPlan {
    /// Plan over a spec.
    pub fn new(spec: FaultSpec) -> Self {
        FaultPlan {
            spec: Arc::new(spec),
            cache_probes: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// The underlying spec.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Seeded Bernoulli trial: folds `words` into the seed and compares a
    /// 53-bit uniform draw against `prob`.
    fn chance(&self, words: &[u64], prob: f64) -> bool {
        if prob <= 0.0 {
            return false;
        }
        if prob >= 1.0 {
            return true;
        }
        let mut h = self.spec.seed;
        for &w in words {
            h = split_seed(h, w);
        }
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        u < prob
    }

    /// How many times the task `(stage_key, op_seq, partition)` fails before
    /// succeeding, capped at `max_failures_per_task`. Pure: recomputing the
    /// same task reports the same failure count.
    pub fn injected_failures(&self, stage_key: u64, op_seq: u64, partition: usize) -> u32 {
        let mut fails = 0u32;
        while fails < self.spec.max_failures_per_task
            && self.chance(
                &[
                    DOMAIN_FAILURE,
                    stage_key,
                    op_seq,
                    partition as u64,
                    fails as u64,
                ],
                self.spec.task_failure_prob,
            )
        {
            fails += 1;
        }
        fails
    }

    /// Extra microseconds of injected delay when this task is chosen as a
    /// straggler: the larger of `busy_us × (multiplier − 1)` and the delay
    /// floor, so even microsecond-scale tasks stall visibly.
    pub fn straggler_extra_us(
        &self,
        stage_key: u64,
        op_seq: u64,
        partition: usize,
        busy_us: u64,
    ) -> Option<u64> {
        if self.chance(
            &[DOMAIN_STRAGGLER, stage_key, op_seq, partition as u64],
            self.spec.straggler_prob,
        ) {
            let scaled = (busy_us as f64 * (self.spec.straggler_multiplier - 1.0)).round() as u64;
            Some(scaled.max(self.spec.straggler_min_delay_us))
        } else {
            None
        }
    }

    /// Whether the cache entry under `key` is lost at this lookup. Each call
    /// advances the key's probe counter, so losses are spread across a run
    /// rather than repeated forever — and since lookups happen in a
    /// deterministic order, so are the losses.
    pub fn cache_entry_lost(&self, key: u64) -> bool {
        let probe = {
            let mut probes = self.cache_probes.lock();
            let c = probes.entry(key).or_insert(0);
            let p = *c;
            *c += 1;
            p
        };
        self.chance(&[DOMAIN_CACHE, key, probe], self.spec.cache_loss_prob)
    }

    /// Simulated seconds the `attempt`-th retry waits before relaunching:
    /// `backoff_base_secs × 2^attempt`.
    pub fn backoff_secs(&self, attempt: u32) -> f64 {
        self.spec.backoff_base_secs * f64::from(2u32.saturating_pow(attempt.min(30)))
    }

    /// Retries tolerated per task before the engine gives up.
    pub fn retry_limit(&self) -> u32 {
        self.spec.retry_limit
    }

    /// Minimum per-partition busy microseconds before recovery will
    /// speculate on a straggler (filters timer-floor noise).
    pub fn speculation_threshold_us(&self) -> u64 {
        self.spec.straggler_min_delay_us
    }
}

/// Stable 64-bit hash of a stage label, used as the fault key when a task
/// scope carries no stage id.
pub fn hash_label(label: &str) -> u64 {
    let mut h = split_seed(0xFA17_5EED, label.len() as u64);
    for b in label.as_bytes() {
        h = split_seed(h, u64::from(*b));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(spec: FaultSpec) -> FaultPlan {
        spec.into_plan()
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let a = plan(
            FaultSpec::new(42)
                .with_task_failures(0.5)
                .with_stragglers(0.5),
        );
        let b = plan(
            FaultSpec::new(42)
                .with_task_failures(0.5)
                .with_stragglers(0.5),
        );
        for stage in 0..8u64 {
            for part in 0..8usize {
                assert_eq!(
                    a.injected_failures(stage, 0, part),
                    b.injected_failures(stage, 0, part)
                );
                assert_eq!(
                    a.straggler_extra_us(stage, 0, part, 100),
                    b.straggler_extra_us(stage, 0, part, 100)
                );
            }
        }
    }

    #[test]
    fn seeds_change_the_schedule() {
        let a = plan(FaultSpec::new(1).with_task_failures(0.5));
        let b = plan(FaultSpec::new(2).with_task_failures(0.5));
        let differ = (0..32u64)
            .any(|s| (0..8).any(|p| a.injected_failures(s, 0, p) != b.injected_failures(s, 0, p)));
        assert!(differ, "32 stages × 8 partitions agreed across seeds");
    }

    #[test]
    fn failure_counts_respect_the_cap() {
        let p = plan(FaultSpec::new(7).with_task_failures(1.0));
        assert_eq!(p.injected_failures(0, 0, 0), p.spec().max_failures_per_task);
        let none = plan(FaultSpec::new(7));
        assert_eq!(none.injected_failures(0, 0, 0), 0);
    }

    #[test]
    fn failure_rate_tracks_probability() {
        let p = plan(FaultSpec::new(99).with_task_failures(0.3));
        let trials = 2000;
        let failed = (0..trials)
            .filter(|&i| p.injected_failures(i, 0, 0) > 0)
            .count();
        let rate = failed as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.05, "observed rate {rate}");
    }

    #[test]
    fn straggler_delay_has_a_floor_and_scales() {
        let p = plan(FaultSpec::new(5).with_stragglers(1.0));
        // Tiny task: floor applies.
        assert_eq!(p.straggler_extra_us(0, 0, 0, 10), Some(2_000));
        // Large task: multiplier applies (4× total ⇒ 3× extra).
        assert_eq!(p.straggler_extra_us(0, 0, 0, 10_000), Some(30_000));
        let never = plan(FaultSpec::new(5));
        assert_eq!(never.straggler_extra_us(0, 0, 0, 10_000), None);
    }

    #[test]
    fn cache_losses_advance_per_probe_and_replay_identically() {
        let spec = FaultSpec::new(11).with_cache_loss(0.5);
        let a = plan(spec.clone());
        let b = plan(spec);
        let seq_a: Vec<bool> = (0..64).map(|_| a.cache_entry_lost(3)).collect();
        let seq_b: Vec<bool> = (0..64).map(|_| b.cache_entry_lost(3)).collect();
        assert_eq!(seq_a, seq_b, "same seed must replay the same loss stream");
        assert!(seq_a.iter().any(|&l| l), "p=0.5 over 64 probes never lost");
        assert!(
            !seq_a.iter().all(|&l| l),
            "p=0.5 over 64 probes always lost"
        );
    }

    #[test]
    fn backoff_is_exponential() {
        let p = plan(FaultSpec::new(0).with_backoff_base_secs(0.5));
        assert_eq!(p.backoff_secs(0), 0.5);
        assert_eq!(p.backoff_secs(1), 1.0);
        assert_eq!(p.backoff_secs(3), 4.0);
    }

    #[test]
    fn hash_label_separates_labels() {
        assert_ne!(hash_label("transform:a"), hash_label("transform:b"));
        assert_eq!(hash_label("fit:x"), hash_label("fit:x"));
    }
}
