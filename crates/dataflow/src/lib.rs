//! # keystone-dataflow
//!
//! A from-scratch stand-in for the distributed data-flow engine KeystoneML
//! runs on (Apache Spark in the paper). It provides:
//!
//! * [`collection::DistCollection`] — an immutable, partitioned collection
//!   executed **for real** on a local thread pool, with one logical worker
//!   per simulated cluster node;
//! * [`columnar::ColumnarBatch`] — contiguous per-partition storage for
//!   dense `f64` records, the execution-time representation the optimizer's
//!   columnar fused path gathers partitions into so operator chains run as
//!   tight loops over slices;
//! * [`cluster::ResourceDesc`] — the cluster resource descriptor of §3
//!   (per-node GFLOP/s, memory/disk/network bandwidth, node count), with
//!   hardware presets and a microbenchmark calibrator;
//! * [`cost::CostProfile`] — the `(flops, bytes, network)` operator cost
//!   triple of Fig. 3, and the `R_exec/R_coord` weighting that converts it
//!   into estimated seconds;
//! * [`simclock::SimClock`] — a simulated cluster clock accumulating those
//!   estimates per stage, so experiments can report cluster-scale times that
//!   a laptop cannot physically produce;
//! * [`cache::CacheManager`] — the budgeted cache layer with the pinned-set
//!   policy driven by the whole-pipeline optimizer, plus the LRU policy
//!   (with Spark-like admission control) used as a baseline in Fig. 10;
//! * [`metrics::MetricsRegistry`] — partition-level observability: per-task
//!   spans with worker-lane attribution, per-stage skew/utilization
//!   analysis, and a Chrome trace-event exporter rendering measured worker
//!   lanes next to the simulated-cluster ledger;
//! * [`faults::FaultPlan`] — deterministic, seeded fault injection (task
//!   failures, stragglers, cache-entry loss) that the executor's recovery
//!   machinery — bounded retry, speculative re-execution, lineage
//!   recompute — is tested against.

pub mod cache;
pub mod cluster;
pub mod collection;
pub mod columnar;
pub mod cost;
pub mod faults;
pub mod metrics;
pub mod simclock;
pub mod stats;

/// Tiny seed-splitting helper shared by deterministic samplers.
pub(crate) mod rng_util {
    /// Derives an independent-ish seed from `(seed, stream)` via splitmix64.
    pub fn split_seed(seed: u64, stream: u64) -> u64 {
        let mut z = seed
            .wrapping_add(stream.wrapping_mul(0x9E3779B97F4A7C15))
            .wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

pub use cache::{CacheManager, CachePolicy};
pub use cluster::{ClusterProfile, ResourceDesc};
pub use collection::{DistCollection, SharedPartitionError};
pub use columnar::ColumnarBatch;
pub use cost::CostProfile;
pub use faults::{FaultPlan, FaultSpec};
pub use metrics::{MetricsRegistry, MetricsSnapshot, StageSkew, TaskSpan};
pub use simclock::SimClock;
