//! The operator cost triple and its conversion to estimated time.
//!
//! Mirrors the paper's `class CostProfile(flops, bytes, network)` (Fig. 3)
//! and the split cost model of §3:
//!
//! ```text
//! c(f, As, R) = R_exec · c_exec(f, As, R_w) + R_coord · c_coord(f, As, R_w)
//! ```
//!
//! where `c_exec` is the critical-path execution time on one node (FLOPs at
//! the node's FLOP rate plus local bytes at memory bandwidth) and `c_coord`
//! is the time the most-loaded network link spends moving `network` bytes.

use crate::cluster::ResourceDesc;

/// Per-operator resource consumption estimate.
///
/// All three fields describe the **critical path**: `flops` and `bytes` are
/// the most any single node does, `network` is the traffic over the most
/// loaded link — exactly the convention of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostProfile {
    /// Floating-point operations on the busiest node.
    pub flops: f64,
    /// Local bytes moved (memory/disk) on the busiest node.
    pub bytes: f64,
    /// Bytes over the most loaded network link.
    pub network: f64,
    /// Cluster-wide synchronization points (distributed passes / barriers).
    /// Each costs [`ResourceDesc::barrier_latency_secs`] of coordination —
    /// the scheduling + straggler latency of one distributed job, which is
    /// what makes per-iteration algorithms expensive at small problem sizes
    /// and caps per-step-synchronized SGD's scalability (Table 6).
    pub barriers: f64,
}

impl CostProfile {
    /// A profile with only compute cost.
    pub fn compute(flops: f64) -> Self {
        CostProfile {
            flops,
            ..Default::default()
        }
    }

    /// Component-wise sum.
    pub fn plus(&self, other: &CostProfile) -> CostProfile {
        CostProfile {
            flops: self.flops + other.flops,
            bytes: self.bytes + other.bytes,
            network: self.network + other.network,
            barriers: self.barriers + other.barriers,
        }
    }

    /// Scales every component (e.g. by an iteration count).
    pub fn scaled(&self, s: f64) -> CostProfile {
        CostProfile {
            flops: self.flops * s,
            bytes: self.bytes * s,
            network: self.network * s,
            barriers: self.barriers * s,
        }
    }

    /// Execution-side estimated seconds on one node of `r`.
    pub fn exec_seconds(&self, r: &ResourceDesc) -> f64 {
        self.flops / r.gflops_per_worker + self.bytes / r.mem_bandwidth
    }

    /// Coordination-side estimated seconds: network transfer over the most
    /// loaded link plus per-barrier scheduling latency.
    pub fn coord_seconds(&self, r: &ResourceDesc) -> f64 {
        self.network / r.net_bandwidth + self.barriers * r.barrier_latency_secs
    }

    /// The weighted total cost `R_exec·c_exec + R_coord·c_coord`, in
    /// estimated seconds. This is the quantity the optimizer minimizes; as
    /// the paper notes it need not equal real runtime — it must only rank
    /// alternatives correctly.
    pub fn estimated_seconds(&self, r: &ResourceDesc) -> f64 {
        r.exec_weight * self.exec_seconds(r) + r.coord_weight * self.coord_seconds(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterProfile;

    fn r() -> ResourceDesc {
        ClusterProfile::R3_4xlarge.descriptor(16)
    }

    #[test]
    fn compute_only_profile() {
        let c = CostProfile::compute(1e9);
        assert_eq!(c.bytes, 0.0);
        assert_eq!(c.network, 0.0);
        assert!(c.estimated_seconds(&r()) > 0.0);
    }

    #[test]
    fn plus_and_scaled() {
        let a = CostProfile {
            flops: 1.0,
            bytes: 2.0,
            network: 3.0,
            barriers: 4.0,
        };
        let b = a.scaled(2.0);
        assert_eq!(b.flops, 2.0);
        assert_eq!(b.network, 6.0);
        assert_eq!(b.barriers, 8.0);
        let c = a.plus(&b);
        assert_eq!(c.bytes, 6.0);
        assert_eq!(c.barriers, 12.0);
    }

    #[test]
    fn estimate_is_monotone_in_each_component() {
        let rd = r();
        let base = CostProfile {
            flops: 1e9,
            bytes: 1e8,
            network: 1e7,
            barriers: 0.0,
        };
        let t0 = base.estimated_seconds(&rd);
        for bump in [
            CostProfile {
                flops: 1e10,
                ..base
            },
            CostProfile {
                bytes: 1e10,
                ..base
            },
            CostProfile {
                network: 1e9,
                ..base
            },
        ] {
            assert!(bump.estimated_seconds(&rd) > t0);
        }
    }

    #[test]
    fn network_matters_more_on_slow_links() {
        let fast = ClusterProfile::R3_4xlarge.descriptor(16);
        let slow = ClusterProfile::CommodityGigabit.descriptor(16);
        let c = CostProfile {
            flops: 0.0,
            bytes: 0.0,
            network: 1e9,
            barriers: 0.0,
        };
        assert!(c.estimated_seconds(&slow) > c.estimated_seconds(&fast));
    }

    #[test]
    fn barriers_cost_scheduling_latency() {
        let rd = r();
        let c = CostProfile {
            flops: 0.0,
            bytes: 0.0,
            network: 0.0,
            barriers: 10.0,
        };
        let expect = 10.0 * rd.barrier_latency_secs;
        assert!((c.estimated_seconds(&rd) - expect).abs() < 1e-12);
    }

    #[test]
    fn weights_select_components() {
        let mut rd = r();
        rd.coord_weight = 0.0;
        let c = CostProfile {
            flops: 0.0,
            bytes: 0.0,
            network: 1e12,
            barriers: 0.0,
        };
        assert_eq!(c.estimated_seconds(&rd), 0.0);
        rd.coord_weight = 1.0;
        rd.exec_weight = 0.0;
        let c2 = CostProfile::compute(1e12);
        assert_eq!(c2.estimated_seconds(&rd), 0.0);
    }
}
