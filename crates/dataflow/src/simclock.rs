//! The simulated cluster clock.
//!
//! Real execution in this reproduction happens on one machine, so wall-clock
//! time cannot exhibit cluster-scale effects (128-node scaling, 10 GbE
//! bottlenecks). `SimClock` accumulates *estimated* time from
//! [`CostProfile`]s charged by operators, split into execution and
//! coordination components per stage, so experiments such as Fig. 12 and
//! Table 6 can report the quantities the paper plots.

use crate::cluster::ResourceDesc;
use crate::cost::CostProfile;
use parking_lot::Mutex;
use std::sync::Arc;

/// One charged entry on the simulated clock.
#[derive(Debug, Clone, PartialEq)]
pub struct SimEntry {
    /// Stage label (e.g. "featurize", "solve:lbfgs iter 3").
    pub stage: String,
    /// Execution seconds on the critical-path node.
    pub exec_secs: f64,
    /// Coordination (network) seconds on the most loaded link.
    pub coord_secs: f64,
}

/// Thread-safe simulated clock. Cloning shares the underlying ledger.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    entries: Arc<Mutex<Vec<SimEntry>>>,
    /// Ambient lane prefix prepended (as `prefix:`) to every charged stage
    /// label while set. The multi-tenant forest executor scopes each wave
    /// with a `tenant{i}` prefix so charges operators make *themselves*
    /// (e.g. a solver's `solve:lbfgs`) land in the right per-tenant lane,
    /// not just the charges the executor issues.
    prefix: Arc<Mutex<Option<String>>>,
}

impl SimClock {
    /// Fresh, empty clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets (or clears, with `None`) the ambient lane prefix. Shared by all
    /// clones of this clock, like the ledger itself.
    pub fn set_stage_prefix(&self, prefix: Option<String>) {
        *self.prefix.lock() = prefix;
    }

    fn labeled(&self, stage: &str) -> String {
        match self.prefix.lock().as_deref() {
            Some(p) => format!("{p}:{stage}"),
            None => stage.to_string(),
        }
    }

    /// Charges a cost profile under a stage label.
    pub fn charge(&self, stage: &str, profile: &CostProfile, r: &ResourceDesc) {
        let entry = SimEntry {
            stage: self.labeled(stage),
            exec_secs: r.exec_weight * profile.exec_seconds(r),
            coord_secs: r.coord_weight * profile.coord_seconds(r),
        };
        self.entries.lock().push(entry);
    }

    /// Charges raw seconds directly (used when an operator measures a
    /// sample and extrapolates rather than deriving FLOPs analytically).
    pub fn charge_seconds(&self, stage: &str, exec_secs: f64, coord_secs: f64) {
        let stage = self.labeled(stage);
        self.entries.lock().push(SimEntry {
            stage,
            exec_secs,
            coord_secs,
        });
    }

    /// Total simulated seconds.
    pub fn total_seconds(&self) -> f64 {
        self.entries
            .lock()
            .iter()
            .map(|e| e.exec_secs + e.coord_secs)
            .sum()
    }

    /// Total simulated seconds attributed to coordination.
    pub fn coord_seconds(&self) -> f64 {
        self.entries.lock().iter().map(|e| e.coord_secs).sum()
    }

    /// Seconds grouped by stage prefix (everything before the first ':').
    pub fn by_stage(&self) -> Vec<(String, f64)> {
        let mut order: Vec<String> = Vec::new();
        let mut totals: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
        for e in self.entries.lock().iter() {
            let key = e.stage.split(':').next().unwrap_or(&e.stage).to_string();
            if !totals.contains_key(&key) {
                order.push(key.clone());
            }
            *totals.entry(key).or_insert(0.0) += e.exec_secs + e.coord_secs;
        }
        order
            .into_iter()
            .map(|k| {
                let v = totals[&k];
                (k, v)
            })
            .collect()
    }

    /// Opaque position in the ledger; pair with [`SimClock::seconds_since`]
    /// to attribute a span of charges (e.g. one node's execution) without
    /// re-summing the whole ledger.
    pub fn mark(&self) -> usize {
        self.entries.lock().len()
    }

    /// Simulated seconds charged since `mark`.
    pub fn seconds_since(&self, mark: usize) -> f64 {
        self.entries
            .lock()
            .iter()
            .skip(mark)
            .map(|e| e.exec_secs + e.coord_secs)
            .sum()
    }

    /// Snapshot of all entries.
    pub fn entries(&self) -> Vec<SimEntry> {
        self.entries.lock().clone()
    }

    /// Entries paired with cumulative start offsets (seconds): entry `i`
    /// starts where entry `i-1` ended. This is the sequential layout trace
    /// renderers use (see
    /// [`metrics::chrome_trace_json`](crate::metrics::chrome_trace_json)) —
    /// the ledger records durations, not timestamps, so the timeline is the
    /// canonical reconstruction.
    ///
    /// Note the layout is strictly sequential: charges that would overlap
    /// wall-clock time on a real cluster — e.g. `recovery:`/`speculative:`
    /// stages the executor books for retry backoff and speculative copies,
    /// which run concurrently with other partitions — are laid end to end
    /// here. The timeline is a cost ledger, not a schedule.
    pub fn timeline(&self) -> Vec<(f64, SimEntry)> {
        let mut t = 0.0;
        self.entries
            .lock()
            .iter()
            .map(|e| {
                let start = t;
                t += e.exec_secs + e.coord_secs;
                (start, e.clone())
            })
            .collect()
    }

    /// Clears the ledger.
    pub fn reset(&self) {
        self.entries.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterProfile;

    #[test]
    fn charge_accumulates() {
        let clock = SimClock::new();
        let r = ClusterProfile::R3_4xlarge.descriptor(4);
        clock.charge(
            "solve",
            &CostProfile {
                flops: r.gflops_per_worker, // exactly 1 exec second
                bytes: 0.0,
                network: 0.0,
                barriers: 0.0,
            },
            &r,
        );
        clock.charge(
            "solve",
            &CostProfile {
                flops: 0.0,
                bytes: 0.0,
                network: r.net_bandwidth, // exactly 1 coord second
                barriers: 0.0,
            },
            &r,
        );
        assert!((clock.total_seconds() - 2.0).abs() < 1e-12);
        assert!((clock.coord_seconds() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ambient_prefix_scopes_charges_into_a_lane() {
        let clock = SimClock::new();
        clock.charge_seconds("fit:a", 1.0, 0.0);
        clock.set_stage_prefix(Some("tenant0".to_string()));
        clock.charge_seconds("solve:lbfgs", 2.0, 0.0);
        // The prefix is shared by clones, like the ledger.
        clock.clone().charge_seconds("fit:b", 4.0, 0.0);
        clock.set_stage_prefix(None);
        clock.charge_seconds("fit:c", 8.0, 0.0);
        let stages = clock.by_stage();
        assert_eq!(
            stages,
            vec![("fit".to_string(), 9.0), ("tenant0".to_string(), 6.0)]
        );
    }

    #[test]
    fn by_stage_groups_on_prefix() {
        let clock = SimClock::new();
        clock.charge_seconds("featurize:sift", 1.0, 0.0);
        clock.charge_seconds("featurize:fisher", 2.0, 0.0);
        clock.charge_seconds("solve:iter0", 0.0, 3.0);
        let stages = clock.by_stage();
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0], ("featurize".to_string(), 3.0));
        assert_eq!(stages[1], ("solve".to_string(), 3.0));
    }

    #[test]
    fn mark_and_seconds_since_span_charges() {
        let clock = SimClock::new();
        clock.charge_seconds("before", 1.0, 0.0);
        let mark = clock.mark();
        assert_eq!(clock.seconds_since(mark), 0.0);
        clock.charge_seconds("during", 2.0, 0.5);
        assert!((clock.seconds_since(mark) - 2.5).abs() < 1e-12);
        assert!((clock.total_seconds() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn timeline_lays_entries_end_to_end() {
        let clock = SimClock::new();
        clock.charge_seconds("a", 1.0, 0.5);
        clock.charge_seconds("b", 2.0, 0.0);
        let tl = clock.timeline();
        assert_eq!(tl.len(), 2);
        assert_eq!(tl[0].0, 0.0);
        assert!((tl[1].0 - 1.5).abs() < 1e-12);
        assert_eq!(tl[1].1.stage, "b");
    }

    #[test]
    fn clones_share_ledger() {
        let clock = SimClock::new();
        let clone = clock.clone();
        clone.charge_seconds("x", 1.5, 0.0);
        assert_eq!(clock.total_seconds(), 1.5);
        clock.reset();
        assert_eq!(clone.total_seconds(), 0.0);
    }

    #[test]
    fn weights_applied_at_charge_time() {
        let mut r = ClusterProfile::R3_4xlarge.descriptor(1);
        r.exec_weight = 2.0;
        let clock = SimClock::new();
        clock.charge("w", &CostProfile::compute(r.gflops_per_worker), &r);
        assert!((clock.total_seconds() - 2.0).abs() < 1e-12);
    }
}
