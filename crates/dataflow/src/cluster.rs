//! The cluster resource descriptor (`R` in the paper, §3).
//!
//! The descriptor captures per-node compute throughput, memory/disk
//! bandwidth, and network speed, plus the number of nodes. The paper builds
//! it "via configuration data and microbenchmarks"; we ship hardware presets
//! for the EC2 instance type used in the evaluation and a calibration
//! routine that microbenchmarks the local machine.

/// Cluster resource descriptor: everything the cost-based optimizer knows
/// about the hardware.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceDesc {
    /// Number of worker nodes (`R_w`).
    pub workers: usize,
    /// Physical cores per worker node.
    pub cores_per_worker: usize,
    /// Effective per-node floating-point throughput, FLOP/s.
    pub gflops_per_worker: f64,
    /// Per-node memory bandwidth, bytes/s.
    pub mem_bandwidth: f64,
    /// Per-node disk bandwidth, bytes/s.
    pub disk_bandwidth: f64,
    /// Network bandwidth of the most-loaded link, bytes/s.
    pub net_bandwidth: f64,
    /// Memory available for caching per worker, bytes.
    pub mem_per_worker: u64,
    /// Latency of one cluster-wide synchronization barrier (a distributed
    /// job's scheduling + straggler overhead), seconds.
    pub barrier_latency_secs: f64,
    /// Relative weight of execution cost (`R_exec`).
    pub exec_weight: f64,
    /// Relative weight of coordination cost (`R_coord`).
    pub coord_weight: f64,
}

impl ResourceDesc {
    /// Total cluster cache capacity in bytes.
    pub fn total_cache_bytes(&self) -> u64 {
        self.mem_per_worker * self.workers as u64
    }

    /// Returns a copy scaled to a different worker count (strong scaling:
    /// per-node characteristics are unchanged).
    pub fn with_workers(&self, workers: usize) -> ResourceDesc {
        ResourceDesc {
            workers,
            ..self.clone()
        }
    }

    /// Returns a copy with a different per-worker cache budget.
    pub fn with_mem_per_worker(&self, bytes: u64) -> ResourceDesc {
        ResourceDesc {
            mem_per_worker: bytes,
            ..self.clone()
        }
    }
}

/// Named hardware profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterProfile {
    /// Amazon EC2 `r3.4xlarge` (the paper's evaluation hardware): 8 physical
    /// cores, 122 GB RAM, SSD, 10 GbE network.
    R3_4xlarge,
    /// A deliberately network-starved profile (1 GbE) used to demonstrate
    /// that the optimizer flips decisions when coordination gets expensive.
    CommodityGigabit,
    /// Single beefy node: effectively infinite network (local loopback).
    SingleNode,
}

impl ClusterProfile {
    /// Builds the descriptor for `workers` nodes of this profile.
    pub fn descriptor(self, workers: usize) -> ResourceDesc {
        match self {
            // ~3.3 GFLOP/s/core sustained DGEMM × 8 cores; 10 GbE ≈ 1.25e9 B/s.
            ClusterProfile::R3_4xlarge => ResourceDesc {
                workers,
                cores_per_worker: 8,
                gflops_per_worker: 2.6e10,
                mem_bandwidth: 3.0e10,
                disk_bandwidth: 4.0e8,
                net_bandwidth: 1.25e9,
                mem_per_worker: 122 * (1 << 30),
                barrier_latency_secs: 0.2,
                exec_weight: 1.0,
                coord_weight: 1.0,
            },
            ClusterProfile::CommodityGigabit => ResourceDesc {
                workers,
                cores_per_worker: 4,
                gflops_per_worker: 1.0e10,
                mem_bandwidth: 1.5e10,
                disk_bandwidth: 1.5e8,
                net_bandwidth: 1.25e8,
                mem_per_worker: 16 * (1 << 30),
                barrier_latency_secs: 0.3,
                exec_weight: 1.0,
                coord_weight: 1.0,
            },
            ClusterProfile::SingleNode => ResourceDesc {
                workers: 1,
                cores_per_worker: workers.max(1) * 8,
                gflops_per_worker: 2.6e10 * workers.max(1) as f64,
                mem_bandwidth: 3.0e10,
                disk_bandwidth: 4.0e8,
                net_bandwidth: 1.0e11, // loopback: coordination ~free
                mem_per_worker: 256 * (1 << 30),
                barrier_latency_secs: 0.005,
                exec_weight: 1.0,
                coord_weight: 1.0,
            },
        }
    }
}

/// Microbenchmarks the local machine to calibrate a descriptor whose
/// simulated clock roughly tracks local wall time. Used by tests that check
/// the simulated and real clocks agree in *ordering* (never absolute value).
pub fn calibrate_local(workers: usize) -> ResourceDesc {
    use std::time::Instant;
    // FLOP microbenchmark: a fused multiply-add loop of known size.
    let n = 2_000_000u64;
    let start = Instant::now();
    let mut acc = 1.000000001f64;
    let mut x = 0.5f64;
    for _ in 0..n {
        x = x.mul_add(acc, 0.0000001);
        acc += 1e-12;
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    // 2 FLOPs per iteration (mul + add); std::hint prevents the loop from
    // being optimized away entirely.
    std::hint::black_box(x);
    let flops = (2 * n) as f64 / secs;

    // Memory bandwidth microbenchmark: copy a buffer a few times.
    let buf = vec![1u8; 8 << 20];
    let mut out = vec![0u8; 8 << 20];
    let start = Instant::now();
    for _ in 0..4 {
        out.copy_from_slice(&buf);
        std::hint::black_box(&out);
    }
    let mem_secs = start.elapsed().as_secs_f64().max(1e-9);
    let mem_bw = (4 * (8 << 20)) as f64 * 2.0 / mem_secs;

    ResourceDesc {
        workers,
        cores_per_worker: 1,
        gflops_per_worker: flops,
        mem_bandwidth: mem_bw,
        disk_bandwidth: mem_bw / 20.0,
        net_bandwidth: mem_bw / 10.0,
        mem_per_worker: 1 << 30,
        barrier_latency_secs: 0.001,
        exec_weight: 1.0,
        coord_weight: 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_sane_values() {
        let r = ClusterProfile::R3_4xlarge.descriptor(16);
        assert_eq!(r.workers, 16);
        assert!(r.gflops_per_worker > 1e9);
        assert!(r.net_bandwidth < r.mem_bandwidth);
        assert!(r.disk_bandwidth < r.mem_bandwidth);
        assert_eq!(r.total_cache_bytes(), 16 * 122 * (1 << 30));
    }

    #[test]
    fn with_workers_scales_only_node_count() {
        let r = ClusterProfile::R3_4xlarge.descriptor(8);
        let r2 = r.with_workers(64);
        assert_eq!(r2.workers, 64);
        assert_eq!(r2.gflops_per_worker, r.gflops_per_worker);
    }

    #[test]
    fn with_mem_budget() {
        let r = ClusterProfile::R3_4xlarge
            .descriptor(4)
            .with_mem_per_worker(5 << 30);
        assert_eq!(r.mem_per_worker, 5 << 30);
    }

    #[test]
    fn single_node_has_cheap_network() {
        let s = ClusterProfile::SingleNode.descriptor(4);
        assert_eq!(s.workers, 1);
        assert!(s.net_bandwidth > ClusterProfile::R3_4xlarge.descriptor(4).net_bandwidth);
    }

    #[test]
    fn calibration_produces_positive_rates() {
        let r = calibrate_local(2);
        assert!(r.gflops_per_worker > 1e6, "flops {}", r.gflops_per_worker);
        assert!(r.mem_bandwidth > 1e6);
        assert_eq!(r.workers, 2);
    }

    #[test]
    fn profiles_are_distinct() {
        let a = ClusterProfile::R3_4xlarge.descriptor(4);
        let b = ClusterProfile::CommodityGigabit.descriptor(4);
        assert!(a.net_bandwidth > b.net_bandwidth);
        assert!(a.gflops_per_worker > b.gflops_per_worker);
    }
}
