//! Partition-level metrics: task spans, counters/gauges/histograms, skew
//! analysis, and a Chrome trace-event exporter.
//!
//! The node-level tracer (in `keystone-core`) sees a pipeline as a sequence
//! of operator executions, but the paper's cost model is a claim about
//! *partition-parallel* execution: `ResourceDesc` prices a node's work as
//! "slowest worker + coordination" (§4.1), so a skewed partition — one
//! straggling worker lane — is exactly what breaks a prediction without
//! showing up in node-granularity wall time. This module observes below the
//! node level:
//!
//! * [`TaskSpan`] — one partition's work inside one stage: wall-clock start
//!   and end (microseconds on a shared epoch), the partition index, the
//!   worker lane that actually executed it (the pool thread's index,
//!   falling back to `partition % workers` when no pool is active), and
//!   item/byte throughput.
//! * [`MetricsRegistry`] — a cheaply-cloneable sink for spans plus named
//!   counters, gauges and fixed-bucket [`Histogram`]s whose
//!   [`MetricsSnapshot`]s merge associatively (roll up registries from
//!   parallel drivers).
//! * [`TaskScope`] — an ambient, thread-local attribution scope. The
//!   executor pushes a scope around each node's work; every instrumented
//!   [`DistCollection`](crate::collection::DistCollection) operation invoked
//!   under it emits one `TaskSpan` per partition into the scope's registry.
//! * [`StageSkew`] — per-stage max/median/p99 partition time, a straggler
//!   flag (`max > 2 × median`), and worker-lane utilization (busy wall time
//!   ÷ lane span).
//! * [`chrome_trace_json`] — a Chrome trace-event (Perfetto-loadable) JSON
//!   export rendering real worker lanes and the simulated-cluster stage
//!   ledger side by side as two process groups. Hand-rolled JSON, like the
//!   report writer in `keystone-core` (no registry access, no serde).

use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::faults::FaultPlan;
use crate::simclock::SimClock;

/// One partition's work inside one stage: the physical-task record the
/// node-level trace decomposes into.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpan {
    /// Stage label (the executor uses its node label, e.g. `transform:NGrams`).
    pub stage: String,
    /// Collection operation that did the work (`map`, `aggregate`, ...).
    pub op: &'static str,
    /// Sequence number of the collection operation within its scope — one
    /// per parallel wave, so recovery logic can compare partitions of the
    /// same wave rather than lifetime totals.
    pub op_seq: u64,
    /// Opaque stage identity set by the scope owner (the executor stores the
    /// graph node id) — lets reports join spans back to nodes even when
    /// labels collide.
    pub stage_id: Option<u64>,
    /// Partition index within the collection.
    pub partition: usize,
    /// Worker lane that ran the task: the pool thread's index within its
    /// parallel region, or `partition % workers` when none is available.
    pub worker: usize,
    /// Wall-clock start, microseconds since the registry epoch.
    pub start_us: u64,
    /// Wall-clock end, microseconds since the registry epoch.
    pub end_us: u64,
    /// Items read from the partition.
    pub items_in: u64,
    /// Items produced (1 for per-partition aggregations).
    pub items_out: u64,
    /// Bytes read, estimated shallowly as `items_in × size_of::<T>()`.
    pub bytes: u64,
    /// Failed attempts this task absorbed before succeeding (fault
    /// injection; 0 on healthy runs).
    pub retries: u32,
    /// This span lost a speculative race: it straggled, a re-execution's
    /// result was taken instead. Tagged after the fact by recovery.
    pub speculative: bool,
}

impl TaskSpan {
    /// Wall-clock duration in seconds (non-negative by construction).
    pub fn duration_secs(&self) -> f64 {
        self.end_us.saturating_sub(self.start_us) as f64 / 1e6
    }
}

/// A fixed-bucket histogram: `bounds[i]` is the inclusive upper edge of
/// bucket `i`, with one implicit overflow bucket. Snapshots with identical
/// bounds merge by adding counts.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    /// A histogram over ascending bucket upper bounds.
    pub fn new(bounds: Vec<f64>) -> Self {
        let n = bounds.len() + 1;
        Histogram {
            bounds,
            counts: vec![0; n],
            sum: 0.0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        let i = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[i] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Per-bucket counts (last entry is the overflow bucket).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Bucket upper bounds (one shorter than
    /// [`Histogram::bucket_counts`] — the overflow bucket has no bound).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Nearest-rank quantile estimate: the upper bound of the bucket holding
    /// the rank-`⌈q·n⌉` observation. `q` outside `0.0..=1.0` is clamped to
    /// the nearest valid quantile; a NaN `q` returns `None`. Observations in
    /// the overflow bucket report the largest finite bound — the histogram
    /// cannot resolve beyond its edges. Returns `None` on an empty
    /// histogram, and the only bucket bound on a bound-less histogram.
    ///
    /// Because the estimate is a pure function of the bucket counts,
    /// quantiles commute with [`Histogram::merge`]: merging two snapshots
    /// and taking a quantile equals taking the quantile of the merged
    /// counts (asserted by tests below).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        // A NaN rank is meaningless — reject it here rather than relying on
        // every caller: `f64::clamp` passes NaN through, and `NaN as u64`
        // would silently collapse to rank 1 (i.e. report q≈0).
        if q.is_nan() {
            return None;
        }
        // Out-of-range requests saturate to the nearest valid quantile.
        let q = q.clamp(0.0, 1.0);
        // Nearest rank, 1-based: ceil(q·n) clamped to [1, n] so q=0.0 maps
        // to the first observation rather than rank 0.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Overflow bucket: saturate to the last finite bound.
                let edge = i.min(self.bounds.len().saturating_sub(1));
                return self.bounds.get(edge).copied().or(Some(0.0));
            }
        }
        unreachable!("rank {rank} exceeds histogram count {}", self.count)
    }

    /// Median estimate ([`Histogram::quantile`] at 0.5).
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// 99th-percentile estimate ([`Histogram::quantile`] at 0.99).
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Adds another histogram's counts into this one.
    ///
    /// # Panics
    /// Panics if the bucket bounds differ — merging is only defined across
    /// snapshots of the same metric.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram bounds mismatch");
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// Mergeable point-in-time copy of a registry's scalar metrics.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: HashMap<String, u64>,
    /// Last-write gauges by name.
    pub gauges: HashMap<String, f64>,
    /// Histograms by name.
    pub histograms: HashMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Folds `other` into this snapshot: counters add, histograms merge
    /// bucket-wise, gauges take `other`'s value (last write wins).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
    }
}

#[derive(Debug)]
struct RegistryInner {
    epoch: Instant,
    spans: Mutex<Vec<TaskSpan>>,
    scalars: Mutex<MetricsSnapshot>,
}

/// Shared partition-metrics sink. Cloning shares the underlying ledgers, so
/// collection operations deep inside operators record into the same registry
/// the driver reads — the same ownership model as `SimClock` / `ExecStats`.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// Fresh, empty registry; its epoch (span timestamp zero) is now.
    pub fn new() -> Self {
        MetricsRegistry {
            inner: Arc::new(RegistryInner {
                epoch: Instant::now(),
                spans: Mutex::new(Vec::new()),
                scalars: Mutex::new(MetricsSnapshot::default()),
            }),
        }
    }

    /// Microseconds elapsed since the registry epoch.
    pub fn now_micros(&self) -> u64 {
        self.inner.epoch.elapsed().as_micros() as u64
    }

    /// Appends one task span.
    pub fn record_span(&self, span: TaskSpan) {
        self.inner.spans.lock().push(span);
    }

    /// Appends a batch of task spans (one lock acquisition).
    pub fn record_spans(&self, spans: Vec<TaskSpan>) {
        if !spans.is_empty() {
            self.inner.spans.lock().extend(spans);
        }
    }

    /// Snapshot of all recorded spans.
    pub fn spans(&self) -> Vec<TaskSpan> {
        self.inner.spans.lock().clone()
    }

    /// Number of recorded spans.
    pub fn span_count(&self) -> usize {
        self.inner.spans.lock().len()
    }

    /// Spans recorded at index `mark` onward ([`MetricsRegistry::span_count`]
    /// taken earlier serves as the mark) — how the executor attributes a
    /// window of the ledger to one node execution.
    pub fn spans_from(&self, mark: usize) -> Vec<TaskSpan> {
        self.inner.spans.lock().iter().skip(mark).cloned().collect()
    }

    /// Tags spans of `(stage_id, op_seq, partition)` recorded at `mark`
    /// onward as speculative losers (their straggling result was replaced by
    /// a re-execution's). Returns how many spans were tagged.
    pub fn mark_speculative(
        &self,
        mark: usize,
        stage_id: Option<u64>,
        op_seq: u64,
        partition: usize,
    ) -> usize {
        let mut spans = self.inner.spans.lock();
        let mut tagged = 0;
        for s in spans.iter_mut().skip(mark) {
            if s.stage_id == stage_id && s.op_seq == op_seq && s.partition == partition {
                s.speculative = true;
                tagged += 1;
            }
        }
        tagged
    }

    /// Adds `by` to the named counter.
    pub fn inc_counter(&self, name: &str, by: u64) {
        *self
            .inner
            .scalars
            .lock()
            .counters
            .entry(name.to_string())
            .or_insert(0) += by;
    }

    /// Current value of the named counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .scalars
            .lock()
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Sets the named gauge.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.inner
            .scalars
            .lock()
            .gauges
            .insert(name.to_string(), value);
    }

    /// Current value of the named gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.inner.scalars.lock().gauges.get(name).copied()
    }

    /// Records an observation into the named histogram, creating it with
    /// `bounds` on first use. Later calls ignore `bounds`.
    pub fn observe(&self, name: &str, bounds: &[f64], value: f64) {
        let mut scalars = self.inner.scalars.lock();
        scalars
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds.to_vec()))
            .observe(value);
    }

    /// Copy of the named histogram.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.inner.scalars.lock().histograms.get(name).cloned()
    }

    /// Mergeable snapshot of counters, gauges and histograms.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.inner.scalars.lock().clone()
    }

    /// Clears spans and scalar metrics (the epoch is unchanged, so span
    /// timestamps stay comparable across resets).
    pub fn reset(&self) {
        self.inner.spans.lock().clear();
        *self.inner.scalars.lock() = MetricsSnapshot::default();
    }

    /// Per-stage skew and utilization over the recorded spans, in first-seen
    /// stage order. Stages are keyed by `(stage_id, stage)`, so two nodes
    /// sharing a label stay separate. Partition time is the summed busy time
    /// of that partition's spans within the stage (a node may run several
    /// collection operations).
    pub fn stage_skew(&self) -> Vec<StageSkew> {
        let spans = self.inner.spans.lock();
        let mut order: Vec<(Option<u64>, String)> = Vec::new();
        let mut groups: HashMap<(Option<u64>, String), Vec<&TaskSpan>> = HashMap::new();
        for s in spans.iter() {
            let key = (s.stage_id, s.stage.clone());
            groups.entry(key.clone()).or_insert_with(|| {
                order.push(key.clone());
                Vec::new()
            });
            groups.get_mut(&key).expect("just inserted").push(s);
        }
        order
            .into_iter()
            .map(|key| {
                let group = &groups[&key];
                StageSkew::from_spans(key.1, key.0, group)
            })
            .collect()
    }
}

/// Skew and utilization analysis of one stage's task spans.
#[derive(Debug, Clone)]
pub struct StageSkew {
    /// Stage label.
    pub stage: String,
    /// Stage identity, when the scope owner set one (executor node id).
    pub stage_id: Option<u64>,
    /// Number of task spans recorded for the stage.
    pub tasks: usize,
    /// Number of distinct partitions touched.
    pub partitions: usize,
    /// Number of distinct worker lanes touched.
    pub lanes: usize,
    /// Summed busy seconds across all spans.
    pub total_secs: f64,
    /// Slowest partition's busy seconds.
    pub max_secs: f64,
    /// Median partition busy seconds.
    pub median_secs: f64,
    /// 99th-percentile partition busy seconds (nearest-rank).
    pub p99_secs: f64,
    /// `max / median` partition time — 1.0 is perfectly balanced.
    pub skew_ratio: f64,
    /// Straggler flag: the slowest partition took more than twice the
    /// median, the regime where "slowest worker" pricing diverges from
    /// uniform-split pricing.
    pub straggler: bool,
    /// Busy wall time ÷ (lanes × stage wall span): 1.0 means every lane was
    /// busy for the stage's whole duration.
    pub utilization: f64,
}

impl StageSkew {
    fn from_spans(stage: String, stage_id: Option<u64>, spans: &[&TaskSpan]) -> StageSkew {
        let mut per_partition: HashMap<usize, f64> = HashMap::new();
        let mut lanes: std::collections::HashSet<usize> = std::collections::HashSet::new();
        let mut start = u64::MAX;
        let mut end = 0u64;
        let mut total = 0.0;
        for s in spans {
            *per_partition.entry(s.partition).or_insert(0.0) += s.duration_secs();
            lanes.insert(s.worker);
            start = start.min(s.start_us);
            end = end.max(s.end_us);
            total += s.duration_secs();
        }
        let mut times: Vec<f64> = per_partition.values().copied().collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite durations"));
        let nearest_rank = |q: f64| -> f64 {
            let idx = ((q * times.len() as f64).ceil() as usize).clamp(1, times.len()) - 1;
            times[idx]
        };
        let max_secs = *times.last().expect("non-empty stage group");
        let median_secs = nearest_rank(0.5);
        let p99_secs = nearest_rank(0.99);
        // Timer floor: sub-microsecond partitions all read 0; treat the
        // ratio as balanced rather than dividing by zero.
        let skew_ratio = if median_secs > 0.0 {
            max_secs / median_secs
        } else {
            1.0
        };
        let span_secs = end.saturating_sub(start) as f64 / 1e6;
        let utilization = if span_secs > 0.0 && !lanes.is_empty() {
            (total / (lanes.len() as f64 * span_secs)).min(1.0)
        } else {
            1.0
        };
        StageSkew {
            stage,
            stage_id,
            tasks: spans.len(),
            partitions: per_partition.len(),
            lanes: lanes.len(),
            total_secs: total,
            max_secs,
            median_secs,
            p99_secs,
            skew_ratio,
            straggler: median_secs > 0.0 && max_secs > 2.0 * median_secs,
            utilization,
        }
    }
}

/// Ambient attribution for instrumented collection operations: which
/// registry to record into, what the current stage is called, and how many
/// logical worker lanes the active `ResourceDesc` provides. Optionally
/// carries a [`FaultPlan`] so partition tasks run under injected faults.
#[derive(Debug, Clone)]
pub struct TaskScope {
    /// Destination registry.
    pub registry: MetricsRegistry,
    /// Stage label stamped on every span.
    pub stage: Arc<str>,
    /// Opaque stage identity (executor node id).
    pub stage_id: Option<u64>,
    /// Logical worker lanes (fallback lane mapping when no pool thread
    /// index is available is `partition % workers`).
    pub workers: usize,
    /// Fault schedule governing tasks under this scope, if any.
    pub faults: Option<FaultPlan>,
    /// Sequence number of collection operations run under this scope, so
    /// two ops on the same partition get independent fault decisions.
    op_seq: Arc<AtomicU64>,
}

impl TaskScope {
    /// A fault-free scope.
    pub fn new(
        registry: &MetricsRegistry,
        stage: &str,
        stage_id: Option<u64>,
        workers: usize,
    ) -> Self {
        TaskScope {
            registry: registry.clone(),
            stage: Arc::from(stage),
            stage_id,
            workers: workers.max(1),
            faults: None,
            op_seq: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Attaches a fault plan (pass `None` to keep the scope fault-free).
    pub fn with_faults(mut self, faults: Option<FaultPlan>) -> Self {
        self.faults = faults;
        self
    }

    /// Key identifying this stage in fault decisions: the stage id when the
    /// scope owner set one, else a hash of the stage label.
    pub fn fault_key(&self) -> u64 {
        self.stage_id
            .unwrap_or_else(|| crate::faults::hash_label(&self.stage))
    }

    /// Takes the next operation sequence number (one per collection
    /// operation, drawn on the driving thread before the fan-out).
    pub fn next_op_seq(&self) -> u64 {
        self.op_seq.fetch_add(1, Ordering::Relaxed)
    }
}

thread_local! {
    static SCOPES: RefCell<Vec<TaskScope>> = const { RefCell::new(Vec::new()) };
}

/// Pops the pushed scope even when `f` panics.
struct ScopeGuard;

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        SCOPES.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Runs `f` with a [`TaskScope`] active on this thread. Scopes nest: the
/// innermost wins, so an estimator that re-enters the executor attributes
/// inner nodes' partition work to the inner nodes. The scope is visible only
/// on the calling thread — instrumented collection operations read it before
/// fanning out to the pool, so per-partition work is still attributed.
pub fn with_task_scope<T>(
    registry: &MetricsRegistry,
    stage: &str,
    stage_id: Option<u64>,
    workers: usize,
    f: impl FnOnce() -> T,
) -> T {
    enter_task_scope(TaskScope::new(registry, stage, stage_id, workers), f)
}

/// Runs `f` with an explicit [`TaskScope`] active on this thread — the
/// general form of [`with_task_scope`], used when the scope carries extras
/// such as a fault plan.
pub fn enter_task_scope<T>(scope: TaskScope, f: impl FnOnce() -> T) -> T {
    SCOPES.with(|s| s.borrow_mut().push(scope));
    let _guard = ScopeGuard;
    f()
}

/// The innermost active scope on this thread, if any.
pub fn current_task_scope() -> Option<TaskScope> {
    SCOPES.with(|s| s.borrow().last().cloned())
}

/// One argument value on a [`ChromeExtra`] event.
#[derive(Debug, Clone)]
pub enum ChromeArg {
    /// A JSON number.
    Num(f64),
    /// A JSON string.
    Str(String),
}

/// A caller-supplied complete (`"ph":"X"`) event rendered on the third
/// process group (`pid 3`, "serving (virtual)") of
/// [`chrome_trace_json_with`]. The node-level tracer in `keystone-core`
/// lives above this crate, so events it owns — serve batch waves, admission
/// rejects — are lowered into this carrier type and handed to the exporter
/// (see `keystone_core::export::chrome_trace_json`).
#[derive(Debug, Clone)]
pub struct ChromeExtra {
    /// Thread name within the virtual process (e.g. `serve:batches`);
    /// lanes are assigned tids in first-seen order.
    pub lane: String,
    /// Event name.
    pub name: String,
    /// Start, microseconds of *virtual* time.
    pub start_us: u64,
    /// Duration, microseconds of virtual time (0 renders as an instant).
    pub dur_us: u64,
    /// `args` payload, in the given order.
    pub args: Vec<(String, ChromeArg)>,
}

/// Serializes the registry's task spans and a [`SimClock`] ledger as a
/// Chrome trace-event JSON array, loadable in `chrome://tracing` and
/// Perfetto.
///
/// Two process groups:
/// * `pid 1` — **measured worker lanes**: one thread per logical worker
///   lane, one complete (`"ph":"X"`) event per [`TaskSpan`], at real
///   wall-clock microseconds.
/// * `pid 2` — **simulated cluster**: the `SimClock` ledger laid out
///   sequentially (entry `i` starts where `i-1` ended), one thread per
///   stage prefix — including the `recovery:`/`speculative:` stages the
///   executor books for retries and speculation and the `serve:` stages
///   the serving layer charges — so paper-scale estimated stage times sit
///   next to the measured lanes.
///
/// Metadata (`"ph":"M"`) events name both processes and every thread.
pub fn chrome_trace_json(registry: &MetricsRegistry, sim: &SimClock) -> String {
    chrome_trace_json_with(registry, sim, &[])
}

/// [`chrome_trace_json`] plus a third process group (`pid 3`, "serving
/// (virtual)") of caller-supplied [`ChromeExtra`] events on virtual-time
/// lanes — how `ServeBatch`/`ServeReject` trace events reach Perfetto.
pub fn chrome_trace_json_with(
    registry: &MetricsRegistry,
    sim: &SimClock,
    extras: &[ChromeExtra],
) -> String {
    let spans = registry.spans();
    let mut out = String::with_capacity(256 + spans.len() * 160);
    out.push('[');
    let mut first = true;
    let mut push = |out: &mut String, ev: String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&ev);
    };

    push(
        &mut out,
        meta_event("process_name", 1, None, "workers (measured)"),
    );
    let mut lanes: Vec<usize> = spans.iter().map(|s| s.worker).collect();
    lanes.sort_unstable();
    lanes.dedup();
    for lane in &lanes {
        push(
            &mut out,
            meta_event(
                "thread_name",
                1,
                Some(*lane as u64),
                &format!("worker-{lane}"),
            ),
        );
    }
    for s in &spans {
        let mut ev = String::with_capacity(160);
        ev.push_str("{\"name\":");
        json_string(&mut ev, &format!("{}[p{}]", s.stage, s.partition));
        ev.push_str(",\"cat\":");
        json_string(&mut ev, s.op);
        ev.push_str(",\"ph\":\"X\",\"pid\":1,\"tid\":");
        ev.push_str(&s.worker.to_string());
        ev.push_str(",\"ts\":");
        ev.push_str(&s.start_us.to_string());
        ev.push_str(",\"dur\":");
        ev.push_str(&s.end_us.saturating_sub(s.start_us).to_string());
        ev.push_str(",\"args\":{\"partition\":");
        ev.push_str(&s.partition.to_string());
        ev.push_str(",\"items_in\":");
        ev.push_str(&s.items_in.to_string());
        ev.push_str(",\"items_out\":");
        ev.push_str(&s.items_out.to_string());
        ev.push_str(",\"bytes\":");
        ev.push_str(&s.bytes.to_string());
        ev.push_str(",\"retries\":");
        ev.push_str(&s.retries.to_string());
        ev.push_str(",\"speculative\":");
        ev.push_str(if s.speculative { "true" } else { "false" });
        ev.push_str("}}");
        push(&mut out, ev);
    }

    push(
        &mut out,
        meta_event("process_name", 2, None, "simulated cluster"),
    );
    let timeline = sim.timeline();
    // One simulated thread per stage prefix, in first-seen order.
    let mut sim_tids: Vec<String> = Vec::new();
    let tid_of = |stage: &str, sim_tids: &mut Vec<String>| -> u64 {
        let prefix = stage.split(':').next().unwrap_or(stage).to_string();
        match sim_tids.iter().position(|p| p == &prefix) {
            Some(i) => i as u64,
            None => {
                sim_tids.push(prefix);
                (sim_tids.len() - 1) as u64
            }
        }
    };
    let mut sim_events = Vec::with_capacity(timeline.len());
    for (start_secs, e) in &timeline {
        let tid = tid_of(&e.stage, &mut sim_tids);
        let cursor_us = (start_secs * 1e6).max(0.0) as u64;
        let dur_us = ((e.exec_secs + e.coord_secs) * 1e6).max(0.0) as u64;
        let mut ev = String::with_capacity(160);
        ev.push_str("{\"name\":");
        json_string(&mut ev, &e.stage);
        ev.push_str(",\"cat\":\"sim\",\"ph\":\"X\",\"pid\":2,\"tid\":");
        ev.push_str(&tid.to_string());
        ev.push_str(",\"ts\":");
        ev.push_str(&cursor_us.to_string());
        ev.push_str(",\"dur\":");
        ev.push_str(&dur_us.to_string());
        ev.push_str(",\"args\":{\"exec_secs\":");
        json_f64(&mut ev, e.exec_secs);
        ev.push_str(",\"coord_secs\":");
        json_f64(&mut ev, e.coord_secs);
        ev.push_str("}}");
        sim_events.push(ev);
    }
    for (i, prefix) in sim_tids.iter().enumerate() {
        push(
            &mut out,
            meta_event("thread_name", 2, Some(i as u64), &format!("sim:{prefix}")),
        );
    }
    for ev in sim_events {
        push(&mut out, ev);
    }

    if !extras.is_empty() {
        push(
            &mut out,
            meta_event("process_name", 3, None, "serving (virtual)"),
        );
        let mut lanes: Vec<&str> = Vec::new();
        let mut lane_events = Vec::with_capacity(extras.len());
        for e in extras {
            let tid = match lanes.iter().position(|l| *l == e.lane) {
                Some(i) => i as u64,
                None => {
                    lanes.push(&e.lane);
                    (lanes.len() - 1) as u64
                }
            };
            let mut ev = String::with_capacity(160);
            ev.push_str("{\"name\":");
            json_string(&mut ev, &e.name);
            ev.push_str(",\"cat\":\"serve\",\"ph\":\"X\",\"pid\":3,\"tid\":");
            ev.push_str(&tid.to_string());
            ev.push_str(",\"ts\":");
            ev.push_str(&e.start_us.to_string());
            ev.push_str(",\"dur\":");
            ev.push_str(&e.dur_us.to_string());
            ev.push_str(",\"args\":{");
            for (i, (k, v)) in e.args.iter().enumerate() {
                if i > 0 {
                    ev.push(',');
                }
                json_string(&mut ev, k);
                ev.push(':');
                match v {
                    ChromeArg::Num(n) => json_f64(&mut ev, *n),
                    ChromeArg::Str(s) => json_string(&mut ev, s),
                }
            }
            ev.push_str("}}");
            lane_events.push(ev);
        }
        for (i, lane) in lanes.iter().enumerate() {
            push(&mut out, meta_event("thread_name", 3, Some(i as u64), lane));
        }
        for ev in lane_events {
            push(&mut out, ev);
        }
    }

    out.push(']');
    out
}

fn meta_event(name: &str, pid: u64, tid: Option<u64>, value: &str) -> String {
    let mut ev = String::with_capacity(96);
    ev.push_str("{\"name\":");
    json_string(&mut ev, name);
    ev.push_str(",\"ph\":\"M\",\"pid\":");
    ev.push_str(&pid.to_string());
    if let Some(tid) = tid {
        ev.push_str(",\"tid\":");
        ev.push_str(&tid.to_string());
    }
    ev.push_str(",\"args\":{\"name\":");
    json_string(&mut ev, value);
    ev.push_str("}}");
    ev
}

fn json_f64(s: &mut String, v: f64) {
    if v.is_finite() {
        let formatted = format!("{}", v);
        s.push_str(&formatted);
        if !formatted.contains('.') && !formatted.contains('e') {
            s.push_str(".0");
        }
    } else {
        s.push_str("null");
    }
}

fn json_string(s: &mut String, v: &str) {
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push('"');
}

/// Minimal JSON reader used by tests to *parse* (not just balance-check)
/// exported traces: builds a DOM of nested values without external crates.
#[doc(hidden)]
pub mod microjson {
    use std::collections::HashMap;

    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any JSON number.
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object.
        Obj(HashMap<String, Value>),
    }

    impl Value {
        /// The value at `key` of an object.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(m) => m.get(key),
                _ => None,
            }
        }

        /// Numeric payload.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }

        /// String payload.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// Array payload.
        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(a) => Some(a),
                _ => None,
            }
        }
    }

    /// Parses a complete JSON document; `Err` carries the byte offset of the
    /// first syntax error.
    pub fn parse(input: &str) -> Result<Value, usize> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(pos);
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, usize> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => parse_obj(b, pos),
            Some(b'[') => parse_arr(b, pos),
            Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
            Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_lit(b, pos, "null", Value::Null),
            Some(_) => parse_num(b, pos),
            None => Err(*pos),
        }
    }

    fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, usize> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(*pos)
        }
    }

    fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value, usize> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or(start)
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, usize> {
        if b.get(*pos) != Some(&b'"') {
            return Err(*pos);
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match b.get(*pos).ok_or(*pos)? {
                b'"' => {
                    *pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    *pos += 1;
                    match b.get(*pos).ok_or(*pos)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = b.get(*pos + 1..*pos + 5).ok_or(*pos)?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| *pos)?,
                                16,
                            )
                            .map_err(|_| *pos)?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        _ => return Err(*pos),
                    }
                    *pos += 1;
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| *pos)?;
                    let c = rest.chars().next().ok_or(*pos)?;
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Value, usize> {
        *pos += 1; // '['
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(*pos),
            }
        }
    }

    fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Value, usize> {
        *pos += 1; // '{'
        let mut map = HashMap::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            skip_ws(b, pos);
            let key = parse_string(b, pos)?;
            skip_ws(b, pos);
            if b.get(*pos) != Some(&b':') {
                return Err(*pos);
            }
            *pos += 1;
            map.insert(key, parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(*pos),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(stage: &str, partition: usize, worker: usize, start: u64, end: u64) -> TaskSpan {
        TaskSpan {
            stage: stage.to_string(),
            op: "map",
            op_seq: 0,
            stage_id: Some(1),
            partition,
            worker,
            start_us: start,
            end_us: end,
            items_in: 10,
            items_out: 10,
            bytes: 80,
            retries: 0,
            speculative: false,
        }
    }

    #[test]
    fn clones_share_the_ledger() {
        let r = MetricsRegistry::new();
        let c = r.clone();
        c.record_span(span("s", 0, 0, 0, 10));
        c.inc_counter("x", 2);
        assert_eq!(r.span_count(), 1);
        assert_eq!(r.counter("x"), 2);
        r.reset();
        assert_eq!(c.span_count(), 0);
        assert_eq!(c.counter("x"), 0);
    }

    #[test]
    fn histogram_buckets_and_merge() {
        let mut h = Histogram::new(vec![1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(50.0);
        assert_eq!(h.bucket_counts(), &[1, 1, 1]);
        assert_eq!(h.count(), 3);
        let mut other = Histogram::new(vec![1.0, 10.0]);
        other.observe(0.1);
        h.merge(&other);
        assert_eq!(h.bucket_counts(), &[2, 1, 1]);
        assert!((h.mean() - 55.6 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_on_empty_histogram_is_none() {
        let h = Histogram::new(vec![1.0, 10.0]);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.p50(), None);
        assert_eq!(h.p99(), None);
    }

    #[test]
    fn quantile_on_one_sample_is_its_bucket_for_every_q() {
        let mut h = Histogram::new(vec![1.0, 10.0, 100.0]);
        h.observe(5.0);
        // Every quantile of a single observation is that observation's
        // bucket bound — including q=0.0, which must not underflow to an
        // imaginary rank-0 observation.
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(10.0), "q={q}");
        }
    }

    #[test]
    fn quantile_on_two_samples_splits_at_the_median() {
        let mut h = Histogram::new(vec![1.0, 10.0, 100.0]);
        h.observe(0.5);
        h.observe(50.0);
        // Nearest rank: ceil(0.5·2) = 1 → the lower observation.
        assert_eq!(h.p50(), Some(1.0));
        // ceil(0.99·2) = 2 → the upper observation.
        assert_eq!(h.p99(), Some(100.0));
        assert_eq!(h.quantile(1.0), Some(100.0));
        assert_eq!(h.quantile(0.0), Some(1.0));
    }

    #[test]
    fn quantile_clamps_out_of_range_and_rejects_nan() {
        let mut h = Histogram::new(vec![1.0, 10.0, 100.0]);
        h.observe(0.5); // bucket bound 1.0
        h.observe(50.0); // bucket bound 100.0
                         // Out-of-range q saturates to the nearest valid quantile.
        assert_eq!(h.quantile(-0.1), h.quantile(0.0), "q=-0.1 clamps to 0.0");
        assert_eq!(h.quantile(-0.1), Some(1.0));
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(100.0));
        assert_eq!(h.quantile(1.5), h.quantile(1.0), "q=1.5 clamps to 1.0");
        assert_eq!(h.quantile(1.5), Some(100.0));
        // NaN has no rank: it must be rejected, not silently treated as
        // q≈0 (which is what `NaN as u64 == 0` used to produce).
        assert_eq!(h.quantile(f64::NAN), None);
    }

    #[test]
    fn quantile_saturates_in_the_overflow_bucket() {
        let mut h = Histogram::new(vec![1.0, 10.0]);
        h.observe(1e9);
        assert_eq!(h.p50(), Some(10.0), "overflow reports the largest bound");
    }

    #[test]
    fn merge_then_quantile_equals_quantile_of_merged() {
        let bounds = vec![0.001, 0.01, 0.1, 1.0, 10.0];
        let mut a = Histogram::new(bounds.clone());
        let mut b = Histogram::new(bounds.clone());
        let mut all = Histogram::new(bounds.clone());
        // Deterministic pseudo-random split of one observation stream.
        let mut x = 0x9E37_79B9u64;
        for i in 0..257 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (x >> 33) as f64 / 1e8;
            all.observe(v);
            if i % 3 == 0 {
                a.observe(v);
            } else {
                b.observe(v);
            }
        }
        a.merge(&b);
        for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(
                a.quantile(q),
                all.quantile(q),
                "merge-then-quantile diverged at q={q}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "bounds mismatch")]
    fn histogram_merge_rejects_different_bounds() {
        let mut a = Histogram::new(vec![1.0]);
        let b = Histogram::new(vec![2.0]);
        a.merge(&b);
    }

    #[test]
    fn snapshots_merge_associatively() {
        let a = MetricsRegistry::new();
        a.inc_counter("items", 5);
        a.set_gauge("mem", 1.0);
        a.observe("lat", &[1.0], 0.5);
        let b = MetricsRegistry::new();
        b.inc_counter("items", 3);
        b.set_gauge("mem", 2.0);
        b.observe("lat", &[1.0], 2.0);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counters["items"], 8);
        assert_eq!(merged.gauges["mem"], 2.0);
        assert_eq!(merged.histograms["lat"].count(), 2);
    }

    #[test]
    fn task_scope_nests_and_unwinds() {
        let r = MetricsRegistry::new();
        assert!(current_task_scope().is_none());
        with_task_scope(&r, "outer", Some(1), 4, || {
            assert_eq!(&*current_task_scope().expect("outer").stage, "outer");
            with_task_scope(&r, "inner", Some(2), 4, || {
                assert_eq!(&*current_task_scope().expect("inner").stage, "inner");
            });
            assert_eq!(&*current_task_scope().expect("outer again").stage, "outer");
        });
        assert!(current_task_scope().is_none());
    }

    #[test]
    fn task_scope_pops_on_panic() {
        let r = MetricsRegistry::new();
        let result = std::panic::catch_unwind(|| {
            with_task_scope(&r, "boom", None, 1, || panic!("inner panic"));
        });
        assert!(result.is_err());
        assert!(current_task_scope().is_none(), "scope leaked across panic");
    }

    #[test]
    fn stage_skew_flags_stragglers() {
        let r = MetricsRegistry::new();
        // Three balanced partitions at 10ms, one straggler at 50ms, on two
        // lanes.
        r.record_spans(vec![
            span("stage", 0, 0, 0, 10_000),
            span("stage", 1, 1, 0, 10_000),
            span("stage", 2, 0, 10_000, 20_000),
            span("stage", 3, 1, 10_000, 60_000),
        ]);
        let skews = r.stage_skew();
        assert_eq!(skews.len(), 1);
        let s = &skews[0];
        assert_eq!(s.tasks, 4);
        assert_eq!(s.partitions, 4);
        assert_eq!(s.lanes, 2);
        assert!((s.max_secs - 0.05).abs() < 1e-9);
        assert!((s.median_secs - 0.01).abs() < 1e-9);
        assert!((s.skew_ratio - 5.0).abs() < 1e-9);
        assert!(s.straggler);
        // Busy 0.08s over 2 lanes × 0.06s span.
        assert!((s.utilization - 0.08 / 0.12).abs() < 1e-9);
    }

    #[test]
    fn stage_skew_balanced_is_not_straggler() {
        let r = MetricsRegistry::new();
        r.record_spans(vec![span("s", 0, 0, 0, 10_000), span("s", 1, 1, 0, 11_000)]);
        let s = &r.stage_skew()[0];
        assert!(!s.straggler);
        assert!(s.skew_ratio < 2.0);
    }

    #[test]
    fn stage_skew_separates_colliding_labels_by_id() {
        let r = MetricsRegistry::new();
        let mut a = span("same", 0, 0, 0, 10);
        a.stage_id = Some(1);
        let mut b = span("same", 0, 0, 0, 10);
        b.stage_id = Some(2);
        r.record_spans(vec![a, b]);
        assert_eq!(r.stage_skew().len(), 2);
    }

    #[test]
    fn chrome_trace_is_parseable_with_both_process_groups() {
        let r = MetricsRegistry::new();
        r.record_spans(vec![
            span("transform:x", 0, 0, 0, 1_000),
            span("transform:x", 1, 1, 0, 2_000),
        ]);
        let sim = SimClock::new();
        sim.charge_seconds("solve:iter0", 1.5, 0.5);
        sim.charge_seconds("featurize", 1.0, 0.0);
        let json = chrome_trace_json(&r, &sim);
        let doc = microjson::parse(&json).expect("trace must parse");
        let events = doc.as_arr().expect("trace is an array");
        let xs: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .collect();
        assert_eq!(xs.len(), 4, "two spans + two sim entries");
        for e in &xs {
            for key in ["pid", "tid", "ts", "dur"] {
                assert!(
                    e.get(key).and_then(|v| v.as_f64()).is_some(),
                    "X event missing numeric {key}: {e:?}"
                );
            }
            assert!(e.get("name").and_then(|v| v.as_str()).is_some());
        }
        // Both process groups present.
        let pids: std::collections::HashSet<i64> = xs
            .iter()
            .map(|e| e.get("pid").and_then(|v| v.as_f64()).expect("pid") as i64)
            .collect();
        assert_eq!(pids, [1i64, 2].into_iter().collect());
        // Sim entries are laid out sequentially: 2.0s then 1.0s.
        let sim_events: Vec<_> = xs
            .iter()
            .filter(|e| e.get("pid").and_then(|v| v.as_f64()) == Some(2.0))
            .collect();
        assert_eq!(sim_events[0].get("ts").and_then(|v| v.as_f64()), Some(0.0));
        assert_eq!(
            sim_events[1].get("ts").and_then(|v| v.as_f64()),
            Some(2_000_000.0)
        );
    }

    #[test]
    fn chrome_trace_extras_render_as_third_process() {
        let r = MetricsRegistry::new();
        r.record_span(span("transform:x", 0, 0, 0, 1_000));
        let sim = SimClock::new();
        sim.charge_seconds("serve:execute", 1.0, 0.0);
        sim.charge_seconds("recovery:solve", 0.5, 0.0);
        sim.charge_seconds("speculative:solve", 0.25, 0.0);
        let extras = vec![
            ChromeExtra {
                lane: "serve:batches".into(),
                name: "batch 0".into(),
                start_us: 100,
                dur_us: 900,
                args: vec![
                    ("size".into(), ChromeArg::Num(4.0)),
                    ("kind".into(), ChromeArg::Str("wave".into())),
                ],
            },
            ChromeExtra {
                lane: "serve:rejects".into(),
                name: "reject 7".into(),
                start_us: 250,
                dur_us: 0,
                args: vec![("queue_depth".into(), ChromeArg::Num(8.0))],
            },
        ];
        let json = chrome_trace_json_with(&r, &sim, &extras);
        let doc = microjson::parse(&json).expect("trace must parse");
        let events = doc.as_arr().expect("array");
        // The virtual-serving process is named and carries both lanes.
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        assert!(names.contains(&"serving (virtual)"), "{names:?}");
        assert!(names.contains(&"serve:batches"));
        assert!(names.contains(&"serve:rejects"));
        // Sim lanes exist for serve/recovery/speculative stage prefixes, so
        // the full run — not just fit-path stages — shows in Perfetto.
        for lane in ["sim:serve", "sim:recovery", "sim:speculative"] {
            assert!(names.contains(&lane), "missing {lane} in {names:?}");
        }
        let pid3: Vec<_> = events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(|p| p.as_str()) == Some("X")
                    && e.get("pid").and_then(|v| v.as_f64()) == Some(3.0)
            })
            .collect();
        assert_eq!(pid3.len(), 2);
        assert_eq!(
            pid3[0]
                .get("args")
                .and_then(|a| a.get("size"))
                .and_then(|v| v.as_f64()),
            Some(4.0)
        );
        assert_eq!(
            pid3[0]
                .get("args")
                .and_then(|a| a.get("kind"))
                .and_then(|v| v.as_str()),
            Some("wave")
        );
        assert_eq!(pid3[1].get("dur").and_then(|v| v.as_f64()), Some(0.0));
    }

    #[test]
    fn microjson_rejects_garbage() {
        assert!(microjson::parse("{\"a\":").is_err());
        assert!(microjson::parse("[1,2,]").is_err());
        assert!(microjson::parse("[1] trailing").is_err());
        assert!(microjson::parse("\"\\q\"").is_err());
    }

    #[test]
    fn microjson_roundtrips_escapes() {
        let v = microjson::parse("{\"k\":\"a\\\"b\\u0041\"}").expect("parse");
        assert_eq!(v.get("k").and_then(|s| s.as_str()), Some("a\"bA"));
    }
}
