//! Partitioned, immutable distributed collections.
//!
//! `DistCollection<T>` plays the role of Spark's RDD: an immutable
//! collection split into partitions, with one partition per logical worker
//! node by default. Per-partition work runs concurrently on the rayon pool,
//! so a `w`-worker simulated cluster genuinely does `w`-way parallel work
//! (bounded by the machine's cores).
//!
//! Unlike Spark, collections here are **eager**; recomputation-versus-reuse
//! decisions live one level up, in the pipeline executor, which is where the
//! paper's materialization optimizer operates (§4.3).

use rayon::prelude::*;
use std::sync::Arc;

use crate::metrics::{current_task_scope, TaskScope, TaskSpan};
use crate::rng_util::split_seed;

/// Shallow byte estimate of a partition: element count × element size. Deep
/// payloads (e.g. `Vec<f64>` records) are undercounted; spans report this as
/// a throughput indicator, not an allocator truth.
fn part_bytes<T>(p: &[T]) -> u64 {
    std::mem::size_of_val(p) as u64
}

/// Runs one partition's work, measuring a [`TaskSpan`] when a task scope is
/// active. `f` returns the result plus the number of items produced. This is
/// called on the pool's worker threads, so timestamps bracket the real
/// per-partition work; the scope itself is captured (and `op_seq` drawn) on
/// the driving thread before the fan-out.
///
/// When the scope carries a [`FaultPlan`](crate::faults::FaultPlan), this is
/// also where injected faults land: the task absorbs its scheduled failures
/// as `retries` on the span (recovery charges their backoff upstream), and a
/// task picked as a straggler sleeps its injected delay before the end
/// timestamp, so the slowdown is real wall time that skew detection sees.
///
/// # Panics
/// Panics when the injected failure count exceeds the plan's retry limit —
/// a permanently failing task fails the job, as on the real cluster.
fn measure_partition<R>(
    scope: &Option<TaskScope>,
    op: &'static str,
    op_seq: u64,
    partition: usize,
    items_in: usize,
    bytes: u64,
    f: impl FnOnce() -> (R, u64),
) -> (R, Option<TaskSpan>) {
    match scope {
        None => (f().0, None),
        Some(sc) => {
            let retries = match &sc.faults {
                Some(fp) => {
                    let fails = fp.injected_failures(sc.fault_key(), op_seq, partition);
                    assert!(
                        fails <= fp.retry_limit(),
                        "stage {:?} partition {partition}: task failed {fails} times, \
                         exceeding the retry limit of {}",
                        sc.stage,
                        fp.retry_limit()
                    );
                    fails
                }
                None => 0,
            };
            let start_us = sc.registry.now_micros();
            let (out, items_out) = f();
            if let Some(fp) = &sc.faults {
                let busy_us = sc.registry.now_micros().saturating_sub(start_us);
                if let Some(extra_us) =
                    fp.straggler_extra_us(sc.fault_key(), op_seq, partition, busy_us)
                {
                    std::thread::sleep(std::time::Duration::from_micros(extra_us));
                }
            }
            let end_us = sc.registry.now_micros();
            let span = TaskSpan {
                stage: sc.stage.to_string(),
                op,
                op_seq,
                stage_id: sc.stage_id,
                partition,
                worker: rayon::current_thread_index().unwrap_or(partition % sc.workers.max(1)),
                start_us,
                end_us,
                items_in: items_in as u64,
                items_out,
                bytes,
                retries,
                speculative: false,
            };
            (out, Some(span))
        }
    }
}

/// Draws the next operation sequence number from the active scope (0 when
/// uninstrumented) — one per collection operation, before the fan-out, so
/// every partition of the op shares it and fault decisions for distinct ops
/// on the same partition stay independent.
fn next_op_seq(scope: &Option<TaskScope>) -> u64 {
    scope.as_ref().map_or(0, |sc| sc.next_op_seq())
}

/// Strips measured spans off per-partition results, committing them to the
/// scope's registry in one batch.
fn commit_spans<R>(scope: &Option<TaskScope>, results: Vec<(R, Option<TaskSpan>)>) -> Vec<R> {
    let mut out = Vec::with_capacity(results.len());
    let mut spans = Vec::new();
    for (r, s) in results {
        out.push(r);
        if let Some(s) = s {
            spans.push(s);
        }
    }
    if let Some(sc) = scope {
        sc.registry.record_spans(spans);
    }
    out
}

/// A partition handle was still shared when exclusive ownership was
/// requested (see [`DistCollection::into_partitions`]). Carries the first
/// offending partition index and its observed handle count so callers can
/// report *which* cached handle kept the data alive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedPartitionError {
    /// Index of the first shared partition.
    pub partition: usize,
    /// Strong-handle count observed on that partition (always ≥ 2).
    pub handles: usize,
}

impl std::fmt::Display for SharedPartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "partition {} is shared by {} handles; use into_partitions_or_clone to copy it",
            self.partition, self.handles
        )
    }
}

impl std::error::Error for SharedPartitionError {}

/// An immutable, partitioned collection of `T`.
#[derive(Debug)]
pub struct DistCollection<T> {
    partitions: Vec<Arc<Vec<T>>>,
}

impl<T> Clone for DistCollection<T> {
    fn clone(&self) -> Self {
        DistCollection {
            partitions: self.partitions.clone(),
        }
    }
}

impl<T: Send + Sync + 'static> DistCollection<T> {
    /// Splits `data` into `num_partitions` nearly equal partitions
    /// (at least 1; empty collections get one empty partition).
    pub fn from_vec(data: Vec<T>, num_partitions: usize) -> Self {
        let p = num_partitions.max(1);
        let n = data.len();
        if n == 0 {
            return DistCollection {
                partitions: vec![Arc::new(Vec::new())],
            };
        }
        let p = p.min(n);
        let base = n / p;
        let extra = n % p;
        let mut partitions = Vec::with_capacity(p);
        let mut it = data.into_iter();
        for i in 0..p {
            let take = base + usize::from(i < extra);
            partitions.push(Arc::new(it.by_ref().take(take).collect::<Vec<T>>()));
        }
        DistCollection { partitions }
    }

    /// Builds directly from per-partition vectors.
    pub fn from_partitions(parts: Vec<Vec<T>>) -> Self {
        let partitions = if parts.is_empty() {
            vec![Arc::new(Vec::new())]
        } else {
            parts.into_iter().map(Arc::new).collect()
        };
        DistCollection { partitions }
    }

    /// Number of partitions (logical workers touched).
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Identity of the underlying data: clones of a collection share their
    /// partition allocations, so they report the same id. Used by the
    /// pipeline optimizer to recognize that two bound sources are the same
    /// dataset (common sub-expression elimination across `and_then_est`
    /// calls).
    ///
    /// The id hashes the partition count plus *every* partition's `Arc`
    /// pointer, so collections that merely share a first allocation (e.g. a
    /// collection and its union with extra partitions) cannot alias.
    pub fn content_id(&self) -> usize {
        let mut h = split_seed(0x9E37_79B9, self.partitions.len() as u64);
        for p in &self.partitions {
            h = split_seed(h, Arc::as_ptr(p) as *const () as usize as u64);
        }
        h as usize
    }

    /// Total number of elements.
    pub fn count(&self) -> usize {
        self.partitions.iter().map(|p| p.len()).sum()
    }

    /// Shared view of partition `i`.
    pub fn partition(&self, i: usize) -> &Arc<Vec<T>> {
        &self.partitions[i]
    }

    /// Iterator over all elements (sequential).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.partitions.iter().flat_map(|p| p.iter())
    }

    /// Element-wise transformation, preserving partitioning.
    pub fn map<U, F>(&self, f: F) -> DistCollection<U>
    where
        U: Send + Sync + 'static,
        F: Fn(&T) -> U + Send + Sync,
    {
        let scope = current_task_scope();
        let seq = next_op_seq(&scope);
        let results = self
            .partitions
            .par_iter()
            .enumerate()
            .map(|(pi, p)| {
                measure_partition(&scope, "map", seq, pi, p.len(), part_bytes::<T>(p), || {
                    let out = Arc::new(p.iter().map(&f).collect::<Vec<U>>());
                    let n = out.len() as u64;
                    (out, n)
                })
            })
            .collect();
        DistCollection {
            partitions: commit_spans(&scope, results),
        }
    }

    /// Whole-partition transformation (the `mapPartitions` of Spark) —
    /// lets operators amortize per-partition setup such as building a local
    /// matrix.
    pub fn map_partitions<U, F>(&self, f: F) -> DistCollection<U>
    where
        U: Send + Sync + 'static,
        F: Fn(&[T]) -> Vec<U> + Send + Sync,
    {
        let scope = current_task_scope();
        let seq = next_op_seq(&scope);
        let results = self
            .partitions
            .par_iter()
            .enumerate()
            .map(|(pi, p)| {
                measure_partition(
                    &scope,
                    "map_partitions",
                    seq,
                    pi,
                    p.len(),
                    part_bytes::<T>(p),
                    || {
                        let out = Arc::new(f(p));
                        let n = out.len() as u64;
                        (out, n)
                    },
                )
            })
            .collect();
        DistCollection {
            partitions: commit_spans(&scope, results),
        }
    }

    /// Whole-stage fused execution: applies `f` to each partition slice in a
    /// single instrumented pass, producing exactly one folded value per
    /// partition. `f` returns the folded value plus the number of records it
    /// represents, so the task span's `items_out` reflects the records a
    /// fused operator chain produced rather than the fold count. This is the
    /// execution primitive behind the optimizer's `FusedMap`: one task span
    /// per partition for the whole chain, no intermediate collections.
    pub fn fold_partitions<U, F>(&self, f: F) -> DistCollection<U>
    where
        U: Send + Sync + 'static,
        F: Fn(&[T]) -> (U, u64) + Send + Sync,
    {
        let scope = current_task_scope();
        let seq = next_op_seq(&scope);
        let results = self
            .partitions
            .par_iter()
            .enumerate()
            .map(|(pi, p)| {
                measure_partition(
                    &scope,
                    "fused",
                    seq,
                    pi,
                    p.len(),
                    part_bytes::<T>(p),
                    || {
                        let (out, n) = f(p);
                        (Arc::new(vec![out]), n)
                    },
                )
            })
            .collect();
        DistCollection {
            partitions: commit_spans(&scope, results),
        }
    }

    /// Takes ownership of the partition vectors without cloning. Used by the
    /// fused-operator exit path, which owns the freshly produced collection
    /// outright.
    ///
    /// Returns [`SharedPartitionError`] if any partition handle is still
    /// shared — e.g. when the collection was admitted into a cross-request
    /// serving cache — instead of panicking, so a cached handle can never
    /// poison a fit. Callers that can clone should prefer
    /// [`DistCollection::into_partitions_or_clone`].
    pub fn into_partitions(self) -> Result<Vec<Vec<T>>, SharedPartitionError> {
        self.partitions
            .into_iter()
            .enumerate()
            .map(|(partition, p)| {
                let handles = Arc::strong_count(&p);
                Arc::try_unwrap(p).map_err(|_| SharedPartitionError { partition, handles })
            })
            .collect()
    }

    /// Like [`DistCollection::into_partitions`], but falls back to cloning
    /// any partition whose handle is shared (the `Arc::make_mut` strategy):
    /// uniquely owned partitions move for free, shared ones are copied and
    /// the other handle keeps its data untouched. Never fails.
    pub fn into_partitions_or_clone(self) -> Vec<Vec<T>>
    where
        T: Clone,
    {
        self.partitions
            .into_iter()
            .map(|p| Arc::try_unwrap(p).unwrap_or_else(|arc| (*arc).clone()))
            .collect()
    }

    /// One-to-many element transformation.
    pub fn flat_map<U, F>(&self, f: F) -> DistCollection<U>
    where
        U: Send + Sync + 'static,
        F: Fn(&T) -> Vec<U> + Send + Sync,
    {
        let scope = current_task_scope();
        let seq = next_op_seq(&scope);
        let results = self
            .partitions
            .par_iter()
            .enumerate()
            .map(|(pi, p)| {
                measure_partition(
                    &scope,
                    "flat_map",
                    seq,
                    pi,
                    p.len(),
                    part_bytes::<T>(p),
                    || {
                        let out = Arc::new(p.iter().flat_map(&f).collect::<Vec<U>>());
                        let n = out.len() as u64;
                        (out, n)
                    },
                )
            })
            .collect();
        DistCollection {
            partitions: commit_spans(&scope, results),
        }
    }

    /// Keeps elements matching the predicate.
    pub fn filter<F>(&self, f: F) -> DistCollection<T>
    where
        T: Clone,
        F: Fn(&T) -> bool + Send + Sync,
    {
        let scope = current_task_scope();
        let seq = next_op_seq(&scope);
        let results = self
            .partitions
            .par_iter()
            .enumerate()
            .map(|(pi, p)| {
                measure_partition(
                    &scope,
                    "filter",
                    seq,
                    pi,
                    p.len(),
                    part_bytes::<T>(p),
                    || {
                        let out = Arc::new(p.iter().filter(|x| f(x)).cloned().collect::<Vec<T>>());
                        let n = out.len() as u64;
                        (out, n)
                    },
                )
            })
            .collect();
        DistCollection {
            partitions: commit_spans(&scope, results),
        }
    }

    /// Zips two collections with identical partitioning element-by-element.
    ///
    /// # Panics
    /// Panics if partition counts or sizes differ (same contract as Spark's
    /// `zip`).
    pub fn zip<U, V, F>(&self, other: &DistCollection<U>, f: F) -> DistCollection<V>
    where
        U: Send + Sync + 'static,
        V: Send + Sync + 'static,
        F: Fn(&T, &U) -> V + Send + Sync,
    {
        assert_eq!(
            self.num_partitions(),
            other.num_partitions(),
            "zip: partition count mismatch"
        );
        let scope = current_task_scope();
        let seq = next_op_seq(&scope);
        let results = self
            .partitions
            .par_iter()
            .zip(other.partitions.par_iter())
            .enumerate()
            .map(|(pi, (a, b))| {
                assert_eq!(a.len(), b.len(), "zip: partition size mismatch");
                let bytes = part_bytes::<T>(a) + part_bytes::<U>(b);
                measure_partition(&scope, "zip", seq, pi, a.len(), bytes, || {
                    let out = Arc::new(
                        a.iter()
                            .zip(b.iter())
                            .map(|(x, y)| f(x, y))
                            .collect::<Vec<V>>(),
                    );
                    let n = out.len() as u64;
                    (out, n)
                })
            })
            .collect();
        DistCollection {
            partitions: commit_spans(&scope, results),
        }
    }

    /// Per-partition aggregation followed by an associative combine on the
    /// driver. This is the `treeAggregate` pattern the distributed solvers
    /// use; network accounting is done by their cost models (each partition
    /// ships one `U` up an aggregation tree).
    pub fn aggregate<U, SeqF, CombF>(&self, zero: U, seq: SeqF, comb: CombF) -> U
    where
        U: Send + Sync + Clone + 'static,
        SeqF: Fn(U, &T) -> U + Send + Sync,
        CombF: Fn(U, U) -> U + Send + Sync,
    {
        let scope = current_task_scope();
        let op_seq = next_op_seq(&scope);
        let results = self
            .partitions
            .par_iter()
            .enumerate()
            .map(|(pi, p)| {
                measure_partition(
                    &scope,
                    "aggregate",
                    op_seq,
                    pi,
                    p.len(),
                    part_bytes::<T>(p),
                    || (p.iter().fold(zero.clone(), &seq), 1),
                )
            })
            .collect();
        let partials: Vec<U> = commit_spans(&scope, results);
        partials.into_iter().fold(zero, comb)
    }

    /// Per-partition map to a partial value, then an associative reduce.
    /// Returns `None` for an empty collection.
    pub fn map_reduce_partitions<U, MapF, RedF>(&self, map: MapF, red: RedF) -> Option<U>
    where
        U: Send + Sync + 'static,
        MapF: Fn(&[T]) -> U + Send + Sync,
        RedF: Fn(U, U) -> U + Send + Sync,
    {
        let scope = current_task_scope();
        let seq = next_op_seq(&scope);
        let results = self
            .partitions
            .par_iter()
            .enumerate()
            .filter(|(_, p)| !p.is_empty())
            .map(|(pi, p)| {
                measure_partition(
                    &scope,
                    "map_reduce_partitions",
                    seq,
                    pi,
                    p.len(),
                    part_bytes::<T>(p),
                    || (map(p), 1),
                )
            })
            .collect();
        let partials: Vec<U> = commit_spans(&scope, results);
        partials.into_iter().reduce(red)
    }

    /// Gathers all elements to the driver (clones).
    pub fn collect(&self) -> Vec<T>
    where
        T: Clone,
    {
        let mut out = Vec::with_capacity(self.count());
        for p in &self.partitions {
            out.extend(p.iter().cloned());
        }
        out
    }

    /// First `n` elements in partition order.
    pub fn take(&self, n: usize) -> Vec<T>
    where
        T: Clone,
    {
        self.iter().take(n).cloned().collect()
    }

    /// Deterministic uniform sample of about `n` elements (without
    /// replacement, proportional across partitions).
    pub fn sample(&self, n: usize, seed: u64) -> Vec<T>
    where
        T: Clone,
    {
        let total = self.count();
        if total == 0 || n == 0 {
            return vec![];
        }
        if n >= total {
            return self.collect();
        }
        let mut out = Vec::with_capacity(n + self.partitions.len());
        for (pi, p) in self.partitions.iter().enumerate() {
            let want = ((p.len() as f64 / total as f64) * n as f64).round() as usize;
            let want = want.min(p.len());
            if want == 0 {
                continue;
            }
            // Deterministic stride sampling with a seeded offset: cheap and
            // good enough for statistics collection.
            let stride = p.len() / want;
            let offset = (split_seed(seed, pi as u64) as usize) % stride.max(1);
            out.extend((0..want).map(|i| p[(offset + i * stride).min(p.len() - 1)].clone()));
        }
        out.truncate(n);
        out
    }

    /// Repartitions into `p` partitions (a full shuffle). The per-partition
    /// cost — cloning each source partition out for the reshard — runs in
    /// parallel and is attributed one task span per *source* partition.
    pub fn repartition(&self, p: usize) -> DistCollection<T>
    where
        T: Clone,
    {
        let scope = current_task_scope();
        let seq = next_op_seq(&scope);
        let results = self
            .partitions
            .par_iter()
            .enumerate()
            .map(|(pi, part)| {
                measure_partition(
                    &scope,
                    "repartition",
                    seq,
                    pi,
                    part.len(),
                    part_bytes::<T>(part),
                    || {
                        let out = part.as_slice().to_vec();
                        let n = out.len() as u64;
                        (out, n)
                    },
                )
            })
            .collect();
        let cloned: Vec<Vec<T>> = commit_spans(&scope, results);
        DistCollection::from_vec(cloned.into_iter().flatten().collect(), p)
    }

    /// Concatenates two collections, keeping both partition sets.
    pub fn union(&self, other: &DistCollection<T>) -> DistCollection<T> {
        let mut partitions = self.partitions.clone();
        partitions.extend(other.partitions.iter().cloned());
        DistCollection { partitions }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_balances_partitions() {
        let c = DistCollection::from_vec((0..10).collect::<Vec<i64>>(), 4);
        assert_eq!(c.num_partitions(), 4);
        let sizes: Vec<usize> = (0..4).map(|i| c.partition(i).len()).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
        assert_eq!(c.count(), 10);
        assert_eq!(c.collect(), (0..10).collect::<Vec<i64>>());
    }

    #[test]
    fn empty_collection() {
        let c: DistCollection<i32> = DistCollection::from_vec(vec![], 8);
        assert_eq!(c.num_partitions(), 1);
        assert_eq!(c.count(), 0);
        assert!(c.collect().is_empty());
        assert!(c.sample(5, 1).is_empty());
    }

    #[test]
    fn more_partitions_than_elements() {
        let c = DistCollection::from_vec(vec![1, 2], 10);
        assert_eq!(c.num_partitions(), 2);
    }

    #[test]
    fn map_preserves_order_and_partitioning() {
        let c = DistCollection::from_vec((0..100).collect::<Vec<i64>>(), 7);
        let d = c.map(|x| x * 2);
        assert_eq!(d.num_partitions(), 7);
        assert_eq!(d.collect(), (0..100).map(|x| x * 2).collect::<Vec<i64>>());
    }

    #[test]
    fn fold_partitions_produces_one_value_per_partition() {
        let c = DistCollection::from_vec((0..10).collect::<Vec<i64>>(), 4);
        let folded = c.fold_partitions(|part| (part.iter().sum::<i64>(), part.len() as u64));
        assert_eq!(folded.num_partitions(), 4);
        assert_eq!(folded.count(), 4);
        assert_eq!(folded.collect().iter().sum::<i64>(), 45);
    }

    #[test]
    fn into_partitions_returns_owned_vectors() {
        let c = DistCollection::from_vec((0..7).collect::<Vec<i64>>(), 3);
        let mapped = c.map(|x| x + 1);
        let parts = mapped.into_partitions().expect("uniquely owned");
        assert_eq!(parts.len(), 3);
        let flat: Vec<i64> = parts.into_iter().flatten().collect();
        assert_eq!(flat, (1..8).collect::<Vec<i64>>());
    }

    #[test]
    fn into_partitions_rejects_shared_handles_with_typed_error() {
        let c = DistCollection::from_vec(vec![1, 2, 3], 2);
        let alias = c.clone();
        let err = c.into_partitions().expect_err("shared handle must error");
        assert_eq!(err.partition, 0);
        assert!(err.handles >= 2, "observed {} handles", err.handles);
        assert!(err.to_string().contains("shared by"));
        // The aliasing handle is untouched by the failed extraction.
        assert_eq!(alias.collect(), vec![1, 2, 3]);
    }

    #[test]
    fn into_partitions_or_clone_copies_shared_handles() {
        let c = DistCollection::from_vec(vec![1, 2, 3], 2);
        let alias = c.clone();
        let parts = c.into_partitions_or_clone();
        assert_eq!(
            parts.into_iter().flatten().collect::<Vec<i64>>(),
            vec![1, 2, 3]
        );
        // Clone fallback: the alias still owns its data.
        assert_eq!(alias.collect(), vec![1, 2, 3]);

        // Uniquely owned handles move without cloning: Arc identity of the
        // partition buffers is observable via pointer equality beforehand.
        let solo = DistCollection::from_vec(vec![9, 8], 1);
        assert_eq!(solo.into_partitions_or_clone(), vec![vec![9, 8]]);
    }

    #[test]
    fn flat_map_and_filter() {
        let c = DistCollection::from_vec(vec![1, 2, 3], 2);
        let d = c.flat_map(|&x| vec![x; x as usize]);
        assert_eq!(d.count(), 6);
        let e = d.filter(|&x| x > 1);
        assert_eq!(e.collect(), vec![2, 2, 3, 3, 3]);
    }

    #[test]
    fn map_partitions_sees_whole_partition() {
        let c = DistCollection::from_vec((0..9).collect::<Vec<i64>>(), 3);
        let sums = c.map_partitions(|p| vec![p.iter().sum::<i64>()]);
        assert_eq!(sums.collect(), vec![3, 12, 21]);
    }

    #[test]
    fn zip_matching_partitions() {
        let a = DistCollection::from_vec((0..10).collect::<Vec<i64>>(), 3);
        let b = a.map(|x| x * 10);
        let z = a.zip(&b, |x, y| x + y);
        assert_eq!(z.collect(), (0..10).map(|x| x * 11).collect::<Vec<i64>>());
    }

    #[test]
    #[should_panic(expected = "partition count mismatch")]
    fn zip_mismatched_panics() {
        let a = DistCollection::from_vec(vec![1, 2, 3, 4], 2);
        let b = DistCollection::from_vec(vec![1, 2, 3, 4], 4);
        let _ = a.zip(&b, |x, y| x + y);
    }

    #[test]
    fn aggregate_sums() {
        let c = DistCollection::from_vec((1..=100).collect::<Vec<i64>>(), 8);
        let s = c.aggregate(0i64, |acc, &x| acc + x, |a, b| a + b);
        assert_eq!(s, 5050);
    }

    #[test]
    fn map_reduce_partitions_max() {
        let c = DistCollection::from_vec(vec![3, 9, 1, 7, 5], 2);
        let m = c.map_reduce_partitions(|p| *p.iter().max().unwrap(), |a, b| a.max(b));
        assert_eq!(m, Some(9));
        let e: DistCollection<i32> = DistCollection::from_vec(vec![], 2);
        assert_eq!(e.map_reduce_partitions(|p| p.len(), |a, b| a + b), None);
    }

    #[test]
    fn sample_size_and_determinism() {
        let c = DistCollection::from_vec((0..1000).collect::<Vec<i64>>(), 8);
        let s1 = c.sample(100, 42);
        let s2 = c.sample(100, 42);
        assert_eq!(s1, s2);
        assert!(s1.len() >= 90 && s1.len() <= 100, "len {}", s1.len());
        // Sampling more than exists returns everything.
        assert_eq!(c.sample(5000, 1).len(), 1000);
    }

    #[test]
    fn sample_is_deterministic_per_seed_and_seed_sensitive() {
        let c = DistCollection::from_vec((0..1000).collect::<Vec<i64>>(), 4);
        // Same (n, seed) → identical samples across runs.
        for seed in [1u64, 42, 7777] {
            assert_eq!(c.sample(50, seed), c.sample(50, seed));
        }
        // Differing seeds shift the stride offsets, so at least one of a
        // batch of seeds selects a different sample (deterministically so:
        // split_seed is a fixed function).
        let base = c.sample(50, 1);
        let differing = (2u64..12).any(|seed| c.sample(50, seed) != base);
        assert!(
            differing,
            "10 distinct seeds all produced the seed-1 sample"
        );
    }

    #[test]
    fn instrumented_ops_emit_one_span_per_partition() {
        use crate::metrics::{with_task_scope, MetricsRegistry};
        let r = MetricsRegistry::new();
        let c = DistCollection::from_vec((0..100).collect::<Vec<i64>>(), 4);
        let d = DistCollection::from_vec((0..100).collect::<Vec<i64>>(), 4);
        with_task_scope(&r, "stage", Some(7), 2, || {
            let m = c.map(|x| x + 1);
            let _ = m.filter(|x| x % 2 == 0);
            let _ = m.flat_map(|&x| vec![x]);
            let _ = m.map_partitions(|p| vec![p.len()]);
            let _ = c.zip(&d, |a, b| a + b);
            let _ = c.aggregate(0i64, |a, &x| a + x, |a, b| a + b);
            let _ = c.map_reduce_partitions(|p| p.len(), |a, b| a + b);
            let _ = c.repartition(2);
        });
        let spans = r.spans();
        // Eight instrumented operations × 4 partitions each.
        assert_eq!(spans.len(), 32);
        for op in [
            "map",
            "filter",
            "flat_map",
            "map_partitions",
            "zip",
            "aggregate",
            "map_reduce_partitions",
            "repartition",
        ] {
            let parts: Vec<usize> = spans
                .iter()
                .filter(|s| s.op == op)
                .map(|s| s.partition)
                .collect();
            assert_eq!(parts.len(), 4, "op {op} missing spans: {parts:?}");
        }
        for s in &spans {
            assert_eq!(&s.stage, "stage");
            assert_eq!(s.stage_id, Some(7));
            // The shim hands contiguous chunks to pool threads, so a
            // partition's real lane never exceeds its own index.
            assert!(
                s.worker <= s.partition,
                "lane {} > partition {}",
                s.worker,
                s.partition
            );
            assert!(s.end_us >= s.start_us, "negative duration");
            assert!(s.items_in > 0 && s.bytes > 0);
            assert_eq!(s.retries, 0, "no fault plan, no retries");
            assert!(!s.speculative);
        }
        // Outside a scope, operations are uninstrumented.
        let before = r.span_count();
        let _ = c.map(|x| x * 2);
        assert_eq!(r.span_count(), before);
    }

    #[test]
    fn union_and_repartition() {
        let a = DistCollection::from_vec(vec![1, 2], 2);
        let b = DistCollection::from_vec(vec![3], 1);
        let u = a.union(&b);
        assert_eq!(u.num_partitions(), 3);
        assert_eq!(u.count(), 3);
        let r = u.repartition(2);
        assert_eq!(r.num_partitions(), 2);
        assert_eq!(r.collect(), vec![1, 2, 3]);
    }

    #[test]
    fn take_in_order() {
        let c = DistCollection::from_vec((0..50).collect::<Vec<i64>>(), 5);
        assert_eq!(c.take(3), vec![0, 1, 2]);
    }

    #[test]
    fn content_id_covers_all_partitions() {
        let a = DistCollection::from_vec((0..10).collect::<Vec<i64>>(), 2);
        // Clones share allocations, so their identity matches.
        assert_eq!(a.clone().content_id(), a.content_id());
        // Distinct data has distinct identity.
        let b = DistCollection::from_vec((0..10).collect::<Vec<i64>>(), 2);
        assert_ne!(a.content_id(), b.content_id());
        // A union shares `a`'s first partition allocation but must not alias
        // `a`: the id covers partition count and every partition pointer.
        let c = DistCollection::from_vec(vec![99i64], 1);
        let u = a.union(&c);
        assert_ne!(u.content_id(), a.content_id());
        // Identical unions (same constituent allocations) agree.
        assert_eq!(u.content_id(), a.union(&c).content_id());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// from_vec → collect is the identity at any partition count.
        #[test]
        fn prop_roundtrip(data in proptest::collection::vec(-1000i64..1000, 0..200), p in 1usize..16) {
            let c = DistCollection::from_vec(data.clone(), p);
            prop_assert_eq!(c.collect(), data);
        }

        /// Aggregation equals a sequential fold regardless of partitioning.
        #[test]
        fn prop_aggregate_partition_invariant(data in proptest::collection::vec(-100i64..100, 1..150), p in 1usize..12) {
            let c = DistCollection::from_vec(data.clone(), p);
            let agg = c.aggregate(0i64, |a, &x| a + x, |a, b| a + b);
            prop_assert_eq!(agg, data.iter().sum::<i64>());
        }

        /// map then collect == collect then map.
        #[test]
        fn prop_map_commutes_with_collect(data in proptest::collection::vec(-100i64..100, 0..150), p in 1usize..12) {
            let c = DistCollection::from_vec(data.clone(), p);
            let via_dist = c.map(|x| x * 3 - 1).collect();
            let via_vec: Vec<i64> = data.iter().map(|x| x * 3 - 1).collect();
            prop_assert_eq!(via_dist, via_vec);
        }

        /// Sample size is bounded and elements come from the collection.
        #[test]
        fn prop_sample_is_subset(data in proptest::collection::vec(0i64..1_000_000, 1..200), p in 1usize..10, n in 0usize..250, seed in 0u64..100) {
            let c = DistCollection::from_vec(data.clone(), p);
            let s = c.sample(n, seed);
            prop_assert!(s.len() <= n.min(data.len()) || s.len() <= data.len());
            for v in &s {
                prop_assert!(data.contains(v));
            }
        }

        /// map_reduce over max equals the global max.
        #[test]
        fn prop_map_reduce_max(data in proptest::collection::vec(-1000i64..1000, 1..150), p in 1usize..12) {
            let c = DistCollection::from_vec(data.clone(), p);
            let m = c.map_reduce_partitions(|part| *part.iter().max().expect("non-empty"), |a, b| a.max(b));
            prop_assert_eq!(m, data.iter().max().copied());
        }
    }
}
