//! Columnar batch storage for dense `f64` feature vectors.
//!
//! A [`ColumnarBatch`] packs one partition's records into a single
//! contiguous `values` buffer plus an `offsets` index (CSR-style), so a
//! fused operator chain can run as tight loops over slices instead of
//! per-record boxed-closure dispatch. Records keep their identity — record
//! `i` is the slice `values[offsets[i]..offsets[i+1]]` — and may have
//! ragged lengths, which is what lets shape-changing per-record operators
//! (e.g. a half-swap or a projection) run columnar too.
//!
//! The batch is an *execution-time* representation: the optimizer's
//! columnar path gathers a `DistCollection<Vec<f64>>` partition into a
//! batch, ping-pongs it through the chain's kernels, and scatters the
//! result back out. Gather and scatter are each a single pass; everything
//! in between touches only contiguous memory.

/// One partition's records packed into contiguous storage.
///
/// Invariant: `offsets` is non-empty, starts at 0, is non-decreasing, and
/// ends at `values.len()`; record `i` occupies
/// `values[offsets[i]..offsets[i+1]]`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColumnarBatch {
    values: Vec<f64>,
    offsets: Vec<usize>,
}

impl ColumnarBatch {
    /// An empty batch with room for `values` doubles across `records`
    /// records.
    pub fn with_capacity(values: usize, records: usize) -> Self {
        let mut offsets = Vec::with_capacity(records + 1);
        offsets.push(0);
        ColumnarBatch {
            values: Vec::with_capacity(values),
            offsets,
        }
    }

    /// Gathers a slice of records into one contiguous batch (a single copy
    /// of each record's values).
    pub fn from_records(records: &[Vec<f64>]) -> Self {
        let total: usize = records.iter().map(|r| r.len()).sum();
        let mut batch = ColumnarBatch::with_capacity(total, records.len());
        for r in records {
            batch.values.extend_from_slice(r);
            batch.offsets.push(batch.values.len());
        }
        batch
    }

    /// Number of records in the batch.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when the batch holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The packed value buffer (all records back to back).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Record `i` as a zero-copy slice view.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    pub fn record(&self, i: usize) -> &[f64] {
        &self.values[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Iterates the records as zero-copy slice views.
    pub fn records(&self) -> impl Iterator<Item = &[f64]> + '_ {
        self.offsets
            .windows(2)
            .map(move |w| &self.values[w[0]..w[1]])
    }

    /// Appends one record by letting `f` write its values directly onto the
    /// packed buffer — whatever `f` appends becomes the record, so kernels
    /// can produce a different length than they consumed.
    pub fn push_record_with(&mut self, f: impl FnOnce(&mut Vec<f64>)) {
        f(&mut self.values);
        self.offsets.push(self.values.len());
    }

    /// Clears the batch (retaining allocations) so it can be reused as the
    /// output side of a ping-pong pass.
    pub fn clear(&mut self) {
        self.values.clear();
        self.offsets.clear();
        self.offsets.push(0);
    }

    /// Scatters the batch back into per-record `Vec`s (one allocation per
    /// record, the inverse of [`ColumnarBatch::from_records`]).
    pub fn into_records(self) -> Vec<Vec<f64>> {
        self.offsets
            .windows(2)
            .map(|w| self.values[w[0]..w[1]].to_vec())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_view_scatter_roundtrip() {
        let records = vec![vec![1.0, 2.0], vec![], vec![3.0], vec![4.0, 5.0, 6.0]];
        let batch = ColumnarBatch::from_records(&records);
        assert_eq!(batch.len(), 4);
        assert!(!batch.is_empty());
        assert_eq!(batch.values(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(batch.record(0), &[1.0, 2.0]);
        assert_eq!(batch.record(1), &[] as &[f64]);
        assert_eq!(batch.record(3), &[4.0, 5.0, 6.0]);
        let views: Vec<&[f64]> = batch.records().collect();
        assert_eq!(views.len(), 4);
        assert_eq!(views[2], &[3.0]);
        assert_eq!(batch.into_records(), records);
    }

    #[test]
    fn empty_batch() {
        let batch = ColumnarBatch::from_records(&[]);
        assert_eq!(batch.len(), 0);
        assert!(batch.is_empty());
        assert_eq!(batch.records().count(), 0);
        assert_eq!(batch.into_records(), Vec::<Vec<f64>>::new());
    }

    #[test]
    fn push_record_with_supports_shape_changes() {
        let mut batch = ColumnarBatch::with_capacity(8, 3);
        batch.push_record_with(|out| out.extend_from_slice(&[1.0, 2.0, 3.0]));
        // A kernel may emit fewer (or more) values than it read.
        batch.push_record_with(|out| out.push(9.0));
        batch.push_record_with(|_| {});
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.record(0), &[1.0, 2.0, 3.0]);
        assert_eq!(batch.record(1), &[9.0]);
        assert_eq!(batch.record(2), &[] as &[f64]);
    }

    #[test]
    fn clear_retains_reusability() {
        let mut batch = ColumnarBatch::from_records(&[vec![1.0], vec![2.0, 3.0]]);
        batch.clear();
        assert!(batch.is_empty());
        batch.push_record_with(|out| out.push(7.0));
        assert_eq!(batch.record(0), &[7.0]);
        assert_eq!(batch.len(), 1);
    }

    #[test]
    fn ping_pong_through_kernels() {
        // The exact loop shape the fused columnar driver uses: two batches
        // swapped through a chain of per-record kernels.
        let records: Vec<Vec<f64>> = (0..5)
            .map(|r| (0..4).map(|c| (r * 4 + c) as f64).collect())
            .collect();
        type Kernel = Box<dyn Fn(&[f64], &mut Vec<f64>)>;
        let kernels: Vec<Kernel> = vec![
            Box::new(|x, out| out.extend(x.iter().map(|v| v * 2.0))),
            Box::new(|x, out| out.extend(x.iter().map(|v| v + 1.0))),
        ];
        let mut batch = ColumnarBatch::from_records(&records);
        let mut next = ColumnarBatch::with_capacity(batch.values().len(), batch.len());
        for k in &kernels {
            next.clear();
            for i in 0..batch.len() {
                next.push_record_with(|out| k(batch.record(i), out));
            }
            std::mem::swap(&mut batch, &mut next);
        }
        let expect: Vec<Vec<f64>> = records
            .iter()
            .map(|r| r.iter().map(|v| v * 2.0 + 1.0).collect())
            .collect();
        assert_eq!(batch.into_records(), expect);
    }
}
