//! The budgeted cache-management layer.
//!
//! The paper adds "an additional cache-management layer that is aware of the
//! multiple Spark jobs that comprise a pipeline" (§5). This module is that
//! layer: node outputs are cached as erased `Arc`s with explicit byte sizes
//! against a cluster-wide budget, under one of three policies:
//!
//! * [`CachePolicy::Pinned`] — only the set chosen by the whole-pipeline
//!   materialization optimizer is admitted (the *KeystoneML* strategy of
//!   Fig. 10). Pinned entries are never evicted.
//! * [`CachePolicy::Lru`] — least-recently-used eviction with Spark-style
//!   admission control: objects larger than `admission_fraction × budget`
//!   are never admitted. (The paper's Fig. 10 discussion observes that this
//!   implicit admission policy causes LRU anomalies.)
//! * `Lru` with `admission_fraction = 1.0` — the naïve "cache everything"
//!   strategy.

use parking_lot::Mutex;
use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Type-erased cached value.
pub type CachedValue = Arc<dyn Any + Send + Sync>;

/// Observer of cache-manager decisions, for tracing layers that want the
/// per-key story (which node hit, which was evicted to make room) rather
/// than the aggregate [`CacheStats`] counters.
///
/// Callbacks fire *after* the cache lock is released, in the order the
/// decisions were made within one operation, so implementations may call
/// back into the cache (the serving layer's many small concurrent lookups
/// made the old hold-the-lock contract a deadlock hazard). The trade-off:
/// under concurrent use, callbacks from different threads interleave in
/// scheduling order rather than strict cache-state order; within a single
/// thread the stream is unchanged.
pub trait CacheObserver: Send + Sync {
    /// A lookup found `key` resident.
    fn on_hit(&self, key: u64) {
        let _ = key;
    }
    /// A lookup missed `key`.
    fn on_miss(&self, key: u64) {
        let _ = key;
    }
    /// `key` was admitted at `size` bytes.
    fn on_admit(&self, key: u64, size: u64) {
        let _ = (key, size);
    }
    /// `key` was evicted to make room.
    fn on_evict(&self, key: u64) {
        let _ = key;
    }
    /// An offer of `key` was refused by policy or size.
    fn on_reject(&self, key: u64) {
        let _ = key;
    }
    /// `key` was explicitly invalidated (e.g. a simulated executor lost the
    /// block), distinct from a capacity eviction.
    fn on_invalidate(&self, key: u64) {
        let _ = key;
    }
}

/// Admission/eviction policy.
#[derive(Debug, Clone)]
pub enum CachePolicy {
    /// Admit only the listed keys; never evict them.
    Pinned(HashSet<u64>),
    /// LRU eviction; admit only objects `<= admission_fraction * budget`.
    Lru {
        /// Fraction of the budget above which a single object is refused
        /// admission (Spark uses a similar implicit rule).
        admission_fraction: f64,
    },
}

/// Hit/miss counters for experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Put calls refused by policy or size.
    pub rejected: u64,
    /// Entries explicitly invalidated (lost blocks), not capacity evictions.
    pub invalidations: u64,
}

struct Entry {
    value: CachedValue,
    size: u64,
    last_used: u64,
    pinned: bool,
    /// Shared-pin refcount: how many concurrent owners (forest tenants,
    /// cross-run executors) currently hold this entry via
    /// [`CacheManager::pin_shared`]. Distinct from the one-way `pinned`
    /// policy flag — the flag says "the plan protects this", the count says
    /// "someone is still using this". An entry is eviction-exempt while
    /// either is set.
    pins: u32,
}

struct Inner {
    entries: HashMap<u64, Entry>,
    used: u64,
    clock: u64,
    stats: CacheStats,
    /// Keys an adaptive plan revision added to a [`CachePolicy::Pinned`]
    /// membership after construction (see [`CacheManager::promote`]).
    promoted: HashSet<u64>,
    /// Keys an adaptive plan revision removed from a
    /// [`CachePolicy::Pinned`] membership (see [`CacheManager::demote`]).
    demoted: HashSet<u64>,
}

/// One observer notification, buffered inside the locked section and
/// replayed once the lock is released (see [`CacheObserver`]).
#[derive(Debug, Clone, Copy)]
enum Note {
    Hit(u64),
    Miss(u64),
    Admit(u64, u64),
    Evict(u64),
    Reject(u64),
    Invalidate(u64),
}

/// Budgeted, policy-driven cache of erased node outputs.
pub struct CacheManager {
    budget: u64,
    policy: CachePolicy,
    observer: Option<Arc<dyn CacheObserver>>,
    inner: Mutex<Inner>,
}

impl CacheManager {
    /// Creates a cache with a byte budget and a policy.
    pub fn new(budget: u64, policy: CachePolicy) -> Self {
        CacheManager {
            budget,
            policy,
            observer: None,
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                used: 0,
                clock: 0,
                stats: CacheStats::default(),
                promoted: HashSet::new(),
                demoted: HashSet::new(),
            }),
        }
    }

    /// Attaches an observer that is notified of every hit, miss, admission,
    /// eviction, and rejection.
    pub fn with_observer(mut self, observer: Arc<dyn CacheObserver>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Replays the notes an operation buffered while it held the lock.
    /// Called only after the lock guard is dropped.
    fn emit(&self, notes: &[Note]) {
        let Some(obs) = &self.observer else {
            return;
        };
        for note in notes {
            match *note {
                Note::Hit(k) => obs.on_hit(k),
                Note::Miss(k) => obs.on_miss(k),
                Note::Admit(k, size) => obs.on_admit(k, size),
                Note::Evict(k) => obs.on_evict(k),
                Note::Reject(k) => obs.on_reject(k),
                Note::Invalidate(k) => obs.on_invalidate(k),
            }
        }
    }

    /// The configured byte budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Bytes currently resident.
    pub fn used(&self) -> u64 {
        self.inner.lock().used
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }

    /// Keys currently resident, in ascending key order. The backing store is
    /// a `HashMap`, so the raw iteration order would vary run to run; sorting
    /// at this boundary keeps every consumer (reports, tests, trace dumps)
    /// deterministic.
    pub fn resident_keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self.inner.lock().entries.keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    /// Whether the policy would even consider admitting `key` (ignoring
    /// size and occupancy). Callers that share a cache across runs check
    /// this before offering, so outputs the policy can never take (e.g.
    /// request-dependent nodes outside a pinned set) produce no reject
    /// noise in observers or counters.
    pub fn policy_admits(&self, key: u64) -> bool {
        match &self.policy {
            CachePolicy::Pinned(set) => {
                let inner = self.inner.lock();
                (set.contains(&key) && !inner.demoted.contains(&key))
                    || inner.promoted.contains(&key)
            }
            CachePolicy::Lru { .. } => true,
        }
    }

    /// Adds `key` to a [`CachePolicy::Pinned`] membership after
    /// construction. Used by adaptive plan revisions to promote a
    /// materialization pick the recalibrated cost model now wants. A no-op
    /// under [`CachePolicy::Lru`], which already considers every key.
    pub fn promote(&self, key: u64) {
        let mut inner = self.inner.lock();
        inner.demoted.remove(&key);
        inner.promoted.insert(key);
    }

    /// Removes `key` from a [`CachePolicy::Pinned`] membership and drops
    /// any resident entry, releasing its bytes. Returns `true` if an entry
    /// was resident and dropped. The drop is an *eviction* (a deliberate
    /// policy decision), not an invalidation: observers see `on_evict` and
    /// the executor's lineage recompute covers any later demand. An entry
    /// another owner holds a [`CacheManager::pin_shared`] on is spared (the
    /// membership still closes); the bytes release at the last unpin's next
    /// demote.
    pub fn demote(&self, key: u64) -> bool {
        let (dropped, note) = {
            let mut inner = self.inner.lock();
            inner.promoted.remove(&key);
            inner.demoted.insert(key);
            match inner.entries.get(&key) {
                // Another owner still holds a shared pin on the entry: the
                // membership closes (no re-admission) but the resident bytes
                // stay until the last [`CacheManager::unpin_shared`]. Before
                // refcounts, a demote by one tenant silently dropped data a
                // concurrent tenant was mid-read on — the single-owner
                // assumption the multi-tenant audit flagged.
                Some(e) if e.pins > 0 => (false, None),
                Some(_) => {
                    let e = inner.entries.remove(&key).expect("resident");
                    inner.used -= e.size;
                    inner.stats.evictions += 1;
                    (true, Some(Note::Evict(key)))
                }
                None => (false, None),
            }
        };
        if let Some(note) = note {
            self.emit(&[note]);
        }
        dropped
    }

    /// Looks up a cached value, updating recency.
    pub fn get(&self, key: u64) -> Option<CachedValue> {
        let (result, note) = {
            let mut inner = self.inner.lock();
            inner.clock += 1;
            let clock = inner.clock;
            match inner.entries.get_mut(&key) {
                Some(e) => {
                    e.last_used = clock;
                    let v = e.value.clone();
                    inner.stats.hits += 1;
                    (Some(v), Note::Hit(key))
                }
                None => {
                    inner.stats.misses += 1;
                    (None, Note::Miss(key))
                }
            }
        };
        self.emit(&[note]);
        result
    }

    /// Offers a value for caching. Returns `true` if it was admitted.
    ///
    /// Re-offering a resident key at the same size is a hit: recency is
    /// bumped and `on_hit` fires — the same outcome a lookup would have
    /// had, so trace counters stay in step with executor behavior. The
    /// *stored value keeps the first-admitted `Arc`*: concurrent readers
    /// may hold it, and value identity is observable downstream
    /// (`DistCollection::content_id` hashes partition pointers), so
    /// swapping in an equal-but-distinct recomputation under a racing
    /// reader would make two lookups of one key disagree on identity. A
    /// re-offer at a *different* size drops the stale entry (its accounting
    /// would otherwise desync `used`) and runs the normal admission path
    /// for the new size.
    pub fn put(&self, key: u64, value: CachedValue, size: u64) -> bool {
        let mut notes = Vec::new();
        let admitted = {
            let mut inner = self.inner.lock();
            self.put_locked(&mut inner, key, value, size, &mut notes)
        };
        self.emit(&notes);
        admitted
    }

    fn put_locked(
        &self,
        inner: &mut Inner,
        key: u64,
        value: CachedValue,
        size: u64,
        notes: &mut Vec<Note>,
    ) -> bool {
        match inner.entries.get(&key).map(|e| e.size == size) {
            Some(true) => {
                inner.clock += 1;
                let clock = inner.clock;
                let e = inner.entries.get_mut(&key).expect("resident");
                e.last_used = clock;
                inner.stats.hits += 1;
                notes.push(Note::Hit(key));
                return true;
            }
            Some(false) => {
                let old = inner.entries.remove(&key).expect("resident");
                inner.used -= old.size;
                inner.stats.invalidations += 1;
                notes.push(Note::Invalidate(key));
            }
            None => {}
        }
        match &self.policy {
            CachePolicy::Pinned(set) => {
                let member = (set.contains(&key) && !inner.demoted.contains(&key))
                    || inner.promoted.contains(&key);
                if !member || size > self.budget.saturating_sub(inner.used) {
                    inner.stats.rejected += 1;
                    notes.push(Note::Reject(key));
                    return false;
                }
                inner.clock += 1;
                let clock = inner.clock;
                inner.entries.insert(
                    key,
                    Entry {
                        value,
                        size,
                        last_used: clock,
                        pinned: true,
                        pins: 0,
                    },
                );
                inner.used += size;
                notes.push(Note::Admit(key, size));
                true
            }
            CachePolicy::Lru { admission_fraction } => {
                let max_object = (self.budget as f64 * admission_fraction) as u64;
                if size > max_object || size > self.budget {
                    inner.stats.rejected += 1;
                    notes.push(Note::Reject(key));
                    return false;
                }
                // Evict LRU non-pinned entries until the new object fits.
                // Tie-break equal recency timestamps by key: `min_by_key`
                // over a HashMap otherwise resolves ties in iteration order,
                // which differs between processes.
                while inner.used + size > self.budget {
                    let victim = inner
                        .entries
                        .iter()
                        .filter(|(_, e)| !e.pinned && e.pins == 0)
                        .min_by_key(|(&k, e)| (e.last_used, k))
                        .map(|(&k, _)| k);
                    match victim {
                        Some(k) => {
                            let e = inner.entries.remove(&k).expect("victim exists");
                            inner.used -= e.size;
                            inner.stats.evictions += 1;
                            notes.push(Note::Evict(k));
                        }
                        None => {
                            inner.stats.rejected += 1;
                            notes.push(Note::Reject(key));
                            return false;
                        }
                    }
                }
                inner.clock += 1;
                let clock = inner.clock;
                inner.entries.insert(
                    key,
                    Entry {
                        value,
                        size,
                        last_used: clock,
                        pinned: false,
                        pins: 0,
                    },
                );
                inner.used += size;
                notes.push(Note::Admit(key, size));
                true
            }
        }
    }

    /// Drops a resident entry (a lost block, not a capacity eviction) and
    /// releases its bytes. Returns `true` if the key was resident. Fires
    /// `on_invalidate` so trace sinks can distinguish loss from eviction.
    pub fn invalidate(&self, key: u64) -> bool {
        let removed = {
            let mut inner = self.inner.lock();
            match inner.entries.remove(&key) {
                Some(e) => {
                    inner.used -= e.size;
                    inner.stats.invalidations += 1;
                    true
                }
                None => false,
            }
        };
        if removed {
            self.emit(&[Note::Invalidate(key)]);
        }
        removed
    }

    /// Marks a resident entry as pinned, exempting it from LRU eviction
    /// (the whole-pipeline optimizer protects its chosen set this way even
    /// when the baseline policy manages the rest). Returns `true` if the key
    /// was resident.
    pub fn pin(&self, key: u64) -> bool {
        let mut inner = self.inner.lock();
        match inner.entries.get_mut(&key) {
            Some(e) => {
                e.pinned = true;
                true
            }
            None => false,
        }
    }

    /// Takes a shared (refcounted) pin on a resident entry: the entry is
    /// exempt from LRU eviction and [`CacheManager::demote`] until every
    /// owner has called [`CacheManager::unpin_shared`]. Multi-owner callers
    /// (forest tenants on one executor pool, cross-run executors sharing a
    /// serving cache) use this instead of the one-way [`CacheManager::pin`]
    /// flag, which has no release and therefore assumes a single owner.
    /// Returns `true` if the key was resident.
    pub fn pin_shared(&self, key: u64) -> bool {
        let mut inner = self.inner.lock();
        match inner.entries.get_mut(&key) {
            Some(e) => {
                e.pins += 1;
                true
            }
            None => false,
        }
    }

    /// Releases one shared pin taken by [`CacheManager::pin_shared`].
    /// Returns `true` if the key was resident and held at least one pin
    /// (the decrement saturates at zero — releasing an unpinned entry is a
    /// reported no-op, not a panic, since a racing invalidation may have
    /// already dropped it).
    pub fn unpin_shared(&self, key: u64) -> bool {
        let mut inner = self.inner.lock();
        match inner.entries.get_mut(&key) {
            Some(e) if e.pins > 0 => {
                e.pins -= 1;
                true
            }
            _ => false,
        }
    }

    /// Current shared-pin count for a key (0 when not resident).
    pub fn pin_count(&self, key: u64) -> u32 {
        self.inner.lock().entries.get(&key).map_or(0, |e| e.pins)
    }

    /// Drops everything (keeps counters).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.entries.clear();
        inner.used = 0;
    }
}

impl std::fmt::Debug for CacheManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("CacheManager")
            .field("budget", &self.budget)
            .field("used", &inner.used)
            .field("entries", &inner.entries.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn val(x: i64) -> CachedValue {
        Arc::new(x)
    }

    #[test]
    fn pinned_admits_only_members() {
        let set: HashSet<u64> = [1, 2].into_iter().collect();
        let c = CacheManager::new(100, CachePolicy::Pinned(set));
        assert!(c.put(1, val(10), 40));
        assert!(!c.put(3, val(30), 10), "non-member admitted");
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_none());
        assert_eq!(c.stats().rejected, 1);
    }

    #[test]
    fn pinned_respects_budget() {
        let set: HashSet<u64> = [1, 2].into_iter().collect();
        let c = CacheManager::new(50, CachePolicy::Pinned(set));
        assert!(c.put(1, val(1), 40));
        assert!(!c.put(2, val(2), 20), "over budget admitted");
        assert_eq!(c.used(), 40);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let c = CacheManager::new(
            100,
            CachePolicy::Lru {
                admission_fraction: 1.0,
            },
        );
        assert!(c.put(1, val(1), 40));
        assert!(c.put(2, val(2), 40));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.get(1).is_some());
        assert!(c.put(3, val(3), 40));
        assert!(c.get(1).is_some(), "recently used entry evicted");
        assert!(c.get(2).is_none(), "LRU entry survived");
        assert!(c.get(3).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn lru_admission_control_rejects_huge_objects() {
        let c = CacheManager::new(
            100,
            CachePolicy::Lru {
                admission_fraction: 0.5,
            },
        );
        assert!(!c.put(1, val(1), 60), "oversized object admitted");
        assert!(c.put(2, val(2), 50));
        assert_eq!(c.stats().rejected, 1);
    }

    #[test]
    fn downcast_roundtrip() {
        let c = CacheManager::new(
            100,
            CachePolicy::Lru {
                admission_fraction: 1.0,
            },
        );
        c.put(7, Arc::new(vec![1u8, 2, 3]), 3);
        let v = c.get(7).expect("cached");
        let bytes = v.downcast::<Vec<u8>>().expect("type");
        assert_eq!(*bytes, vec![1, 2, 3]);
    }

    #[test]
    fn duplicate_put_is_idempotent() {
        let c = CacheManager::new(
            100,
            CachePolicy::Lru {
                admission_fraction: 1.0,
            },
        );
        assert!(c.put(1, val(1), 30));
        assert!(c.put(1, val(1), 30));
        assert_eq!(c.used(), 30);
        // The re-offer counts as a hit, not a silent no-op.
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn resident_put_bumps_recency_and_keeps_first_value() {
        let c = CacheManager::new(
            100,
            CachePolicy::Lru {
                admission_fraction: 1.0,
            },
        );
        assert!(c.put(1, val(10), 40));
        assert!(c.put(2, val(20), 40));
        // Re-offering key 1 bumps its recency, so key 2 is now the LRU
        // victim — before the fix this was a no-op and key 1 got evicted.
        assert!(c.put(1, val(11), 40));
        assert!(c.put(3, val(30), 40));
        assert!(c.get(1).is_some(), "recently re-offered entry evicted");
        assert!(c.get(2).is_none(), "LRU entry survived");
        // First write wins: the originally admitted value stays resident, so
        // readers holding the old Arc and fresh lookups agree on identity.
        let v = c.get(1).expect("resident");
        assert_eq!(*v.downcast::<i64>().expect("type"), 10);
    }

    #[test]
    fn same_size_reoffer_preserves_value_identity() {
        // The serving pattern: two waves race to compute the same
        // request-independent node and both offer it. Whoever wins, every
        // subsequent lookup must return the *same* Arc — pointer identity
        // is observable via `DistCollection::content_id`.
        let c = CacheManager::new(
            100,
            CachePolicy::Lru {
                admission_fraction: 1.0,
            },
        );
        let first: CachedValue = Arc::new(7i64);
        assert!(c.put(1, first.clone(), 16));
        let held = c.get(1).expect("resident");
        assert!(c.put(1, Arc::new(7i64), 16), "re-offer not a hit");
        let after = c.get(1).expect("resident");
        assert!(
            Arc::ptr_eq(&held, &after),
            "same-size re-offer replaced the resident Arc under a reader"
        );
        assert!(Arc::ptr_eq(&after, &first));
    }

    /// An observer that re-enters the cache from its callbacks. Before the
    /// buffered-notification fix, callbacks fired while the cache lock was
    /// held, so this deadlocked; now callbacks run outside the lock and
    /// re-entrancy is legal.
    struct Reentrant {
        cache: Mutex<Option<Arc<CacheManager>>>,
        seen: Mutex<Vec<String>>,
    }
    impl CacheObserver for Reentrant {
        fn on_hit(&self, key: u64) {
            let guard = self.cache.lock();
            if let Some(c) = guard.as_ref() {
                // A stats probe and a foreign-key lookup, both of which
                // take the cache lock.
                let stats = c.stats();
                let other = c.get(key + 1000).is_some();
                self.seen
                    .lock()
                    .push(format!("hit:{key}:hits={}:other={other}", stats.hits));
            }
        }
    }

    #[test]
    fn observer_may_reenter_the_cache() {
        let obs = Arc::new(Reentrant {
            cache: Mutex::new(None),
            seen: Mutex::new(Vec::new()),
        });
        let c = Arc::new(
            CacheManager::new(
                100,
                CachePolicy::Lru {
                    admission_fraction: 1.0,
                },
            )
            .with_observer(obs.clone()),
        );
        *obs.cache.lock() = Some(c.clone());
        assert!(c.put(1, val(1), 10));
        let _ = c.get(1); // on_hit re-enters: stats() + get(1001)
        let seen = obs.seen.lock().clone();
        assert_eq!(seen, vec!["hit:1:hits=1:other=false"]);
        // Drop the cycle so the test leaks nothing.
        *obs.cache.lock() = None;
    }

    #[test]
    fn concurrent_small_lookups_keep_stats_and_identity_consistent() {
        // The serving workload: many threads issuing small lookups and
        // re-offers against one fitted pipeline's materialized set. Checks
        // (a) no hit/miss undercounting, (b) the resident Arc is stable,
        // (c) `used` stays truthful.
        const THREADS: usize = 8;
        const OPS: usize = 200;
        let c = Arc::new(CacheManager::new(
            10_000,
            CachePolicy::Lru {
                admission_fraction: 1.0,
            },
        ));
        let original: CachedValue = Arc::new(42i64);
        assert!(c.put(7, original.clone(), 100));
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let c = c.clone();
                let original = original.clone();
                s.spawn(move || {
                    for i in 0..OPS {
                        let got = c.get(7).expect("resident entry vanished");
                        assert!(
                            Arc::ptr_eq(&got, &original),
                            "resident Arc replaced under concurrent readers"
                        );
                        if i % 3 == t % 3 {
                            // Competing same-size re-offer (counts as a hit).
                            assert!(c.put(7, Arc::new(42i64), 100));
                        }
                    }
                });
            }
        });
        let s = c.stats();
        let reoffers: u64 = (0..THREADS)
            .map(|t| (0..OPS).filter(|i| i % 3 == t % 3).count() as u64)
            .sum();
        assert_eq!(
            s.hits,
            (THREADS * OPS) as u64 + reoffers,
            "hit accounting lost updates under concurrency"
        );
        assert_eq!(s.misses, 0);
        assert_eq!(c.used(), 100, "size accounting drifted");
        assert_eq!(c.resident_keys(), vec![7]);
    }

    #[test]
    fn policy_admits_reflects_policy_membership() {
        let pinned = CacheManager::new(100, CachePolicy::Pinned([3u64].into_iter().collect()));
        assert!(pinned.policy_admits(3));
        assert!(!pinned.policy_admits(4));
        let lru = CacheManager::new(
            100,
            CachePolicy::Lru {
                admission_fraction: 0.5,
            },
        );
        assert!(lru.policy_admits(9), "LRU considers any key");
    }

    #[test]
    fn resident_put_with_new_size_reaccounts() {
        let c = CacheManager::new(
            100,
            CachePolicy::Lru {
                admission_fraction: 1.0,
            },
        );
        assert!(c.put(1, val(1), 30));
        assert_eq!(c.used(), 30);
        // Same key, different size: the stale entry is dropped and the new
        // size admitted, keeping `used` truthful.
        assert!(c.put(1, val(2), 50));
        assert_eq!(c.used(), 50);
        assert_eq!(c.stats().invalidations, 1);
        // Shrinking works the same way.
        assert!(c.put(1, val(3), 10));
        assert_eq!(c.used(), 10);
        // A size-changed re-offer that fails admission leaves the key gone
        // rather than resident with stale accounting.
        let tight = CacheManager::new(
            100,
            CachePolicy::Lru {
                admission_fraction: 0.5,
            },
        );
        assert!(tight.put(7, val(1), 40));
        assert!(!tight.put(7, val(2), 60), "oversized re-offer admitted");
        assert!(tight.get(7).is_none());
        assert_eq!(tight.used(), 0);
    }

    #[test]
    fn lru_admission_boundary_truncation() {
        // budget 10 × fraction 0.35 = 3.5, truncated to a 3-byte cap: an
        // exact-fit 3-byte object is admitted, 4 bytes is rejected.
        let c = CacheManager::new(
            10,
            CachePolicy::Lru {
                admission_fraction: 0.35,
            },
        );
        assert!(c.put(1, val(1), 3), "exact-fit object rejected");
        assert!(!c.put(2, val(2), 4), "over-cap object admitted");
        assert_eq!(c.stats().rejected, 1);
        // fraction 1.0 admits exactly up to the budget.
        let full = CacheManager::new(
            10,
            CachePolicy::Lru {
                admission_fraction: 1.0,
            },
        );
        assert!(full.put(1, val(1), 10));
        assert!(!full.put(2, val(2), 11));
    }

    #[test]
    fn eviction_loop_rejects_when_all_residents_pinned() {
        let c = CacheManager::new(
            100,
            CachePolicy::Lru {
                admission_fraction: 1.0,
            },
        );
        assert!(c.put(1, val(1), 60));
        assert!(c.pin(1));
        assert!(!c.pin(9), "pinned a non-resident key");
        // Key 2 fits the admission cap but not the remaining budget, and
        // the only candidate victim is pinned: the offer must be rejected
        // rather than evicting the pinned entry or looping forever.
        assert!(!c.put(2, val(2), 50));
        assert_eq!(c.stats().rejected, 1);
        assert_eq!(c.stats().evictions, 0);
        assert!(c.get(1).is_some(), "pinned entry lost");
    }

    #[test]
    fn invalidate_releases_bytes_and_counts() {
        let c = CacheManager::new(
            100,
            CachePolicy::Lru {
                admission_fraction: 1.0,
            },
        );
        assert!(c.put(1, val(1), 30));
        assert!(c.invalidate(1));
        assert!(!c.invalidate(1), "double invalidate reported success");
        assert_eq!(c.used(), 0);
        assert_eq!(c.stats().invalidations, 1);
        assert!(c.get(1).is_none());
        // The freed room is reusable.
        assert!(c.put(2, val(2), 100));
    }

    #[test]
    fn clear_resets_usage() {
        let c = CacheManager::new(
            100,
            CachePolicy::Lru {
                admission_fraction: 1.0,
            },
        );
        c.put(1, val(1), 30);
        c.clear();
        assert_eq!(c.used(), 0);
        assert!(c.get(1).is_none());
    }

    #[derive(Default)]
    struct Recorder {
        events: Mutex<Vec<String>>,
    }
    impl CacheObserver for Recorder {
        fn on_hit(&self, key: u64) {
            self.events.lock().push(format!("hit:{key}"));
        }
        fn on_miss(&self, key: u64) {
            self.events.lock().push(format!("miss:{key}"));
        }
        fn on_admit(&self, key: u64, size: u64) {
            self.events.lock().push(format!("admit:{key}:{size}"));
        }
        fn on_evict(&self, key: u64) {
            self.events.lock().push(format!("evict:{key}"));
        }
        fn on_reject(&self, key: u64) {
            self.events.lock().push(format!("reject:{key}"));
        }
        fn on_invalidate(&self, key: u64) {
            self.events.lock().push(format!("invalidate:{key}"));
        }
    }

    #[test]
    fn observer_sees_invalidations() {
        let rec = Arc::new(Recorder::default());
        let c = CacheManager::new(
            100,
            CachePolicy::Lru {
                admission_fraction: 1.0,
            },
        )
        .with_observer(rec.clone());
        assert!(c.put(1, val(1), 30));
        assert!(c.invalidate(1));
        assert!(c.put(2, val(2), 30));
        assert!(c.put(2, val(2), 40)); // size change → invalidate + admit
        let events = rec.events.lock().clone();
        assert_eq!(
            events,
            vec![
                "admit:1:30",
                "invalidate:1",
                "admit:2:30",
                "invalidate:2",
                "admit:2:40",
            ]
        );
    }

    #[test]
    fn observer_sees_the_full_story() {
        let rec = Arc::new(Recorder::default());
        let c = CacheManager::new(
            100,
            CachePolicy::Lru {
                admission_fraction: 0.5,
            },
        )
        .with_observer(rec.clone());
        let _ = c.get(1); // miss
        assert!(c.put(1, val(1), 40)); // admit
        let _ = c.get(1); // hit
        assert!(!c.put(2, val(2), 60)); // reject (oversized)
        assert!(c.put(3, val(3), 50)); // admit
        assert!(c.put(4, val(4), 40)); // evicts LRU (key 1), admit
        let events = rec.events.lock().clone();
        assert_eq!(
            events,
            vec![
                "miss:1",
                "admit:1:40",
                "hit:1",
                "reject:2",
                "admit:3:50",
                "evict:1",
                "admit:4:40",
            ]
        );
        // Observer totals agree with the aggregate counters.
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.rejected, 1);
    }

    #[test]
    fn promote_opens_pinned_membership() {
        let set: HashSet<u64> = [1].into_iter().collect();
        let c = CacheManager::new(100, CachePolicy::Pinned(set));
        assert!(!c.policy_admits(5));
        assert!(!c.put(5, val(5), 10), "non-member admitted");
        c.promote(5);
        assert!(c.policy_admits(5));
        assert!(c.put(5, val(5), 10), "promoted key rejected");
        assert!(c.get(5).is_some());
        // Original members are unaffected.
        assert!(c.policy_admits(1));
    }

    #[test]
    fn demote_closes_membership_and_evicts_resident_entry() {
        let rec = Arc::new(Recorder::default());
        let set: HashSet<u64> = [1, 2].into_iter().collect();
        let c = CacheManager::new(100, CachePolicy::Pinned(set)).with_observer(rec.clone());
        assert!(c.put(1, val(1), 40));
        assert!(c.demote(1), "resident entry not dropped");
        assert!(!c.policy_admits(1));
        assert!(c.get(1).is_none());
        assert_eq!(c.used(), 0, "demote did not release bytes");
        assert!(!c.put(1, val(1), 40), "demoted key re-admitted");
        // The drop is an eviction (a policy decision), never an invalidation.
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().invalidations, 0);
        let events = rec.events.lock().clone();
        assert_eq!(events, vec!["admit:1:40", "evict:1", "miss:1", "reject:1"]);
        // Demoting a non-resident key reports nothing dropped.
        assert!(!c.demote(2));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn promote_after_demote_reopens_membership() {
        let set: HashSet<u64> = [1].into_iter().collect();
        let c = CacheManager::new(100, CachePolicy::Pinned(set));
        c.demote(1);
        assert!(!c.policy_admits(1));
        c.promote(1);
        assert!(c.policy_admits(1));
        assert!(c.put(1, val(1), 10));
        // And the freed budget from a demotion is usable by a promotion.
        let tight = CacheManager::new(40, CachePolicy::Pinned([7u64].into_iter().collect()));
        assert!(tight.put(7, val(7), 40));
        assert!(!tight.put(8, val(8), 40));
        tight.demote(7);
        tight.promote(8);
        assert!(tight.put(8, val(8), 40), "freed budget not reusable");
    }

    #[test]
    fn resident_keys_are_sorted() {
        let c = CacheManager::new(
            1000,
            CachePolicy::Lru {
                admission_fraction: 1.0,
            },
        );
        // Insert in a scrambled order; the boundary must still sort.
        for k in [9u64, 2, 7, 1, 5, 3, 8] {
            assert!(c.put(k, val(k as i64), 10));
        }
        let keys = c.resident_keys();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "resident_keys not sorted: {keys:?}");
        assert_eq!(keys, vec![1, 2, 3, 5, 7, 8, 9]);
    }

    #[test]
    fn eviction_ties_resolve_by_smallest_key() {
        // Two runs with identical operations must evict the same victim even
        // when recency timestamps tie. Recency is bumped per operation so
        // real ties cannot arise through the public API; this pins the
        // tie-break contract directly on the selection expression instead.
        let run = || {
            let rec = Arc::new(Recorder::default());
            let c = CacheManager::new(
                100,
                CachePolicy::Lru {
                    admission_fraction: 1.0,
                },
            )
            .with_observer(rec.clone());
            for k in [4u64, 1, 3, 2] {
                assert!(c.put(k, val(k as i64), 25));
            }
            // Full: the next admit must evict exactly the LRU entry (key 4).
            assert!(c.put(9, val(9), 25));
            let events = rec.events.lock().clone();
            events
        };
        let first = run();
        assert_eq!(first, run(), "eviction schedule not reproducible");
        assert!(first.contains(&"evict:4".to_string()), "events: {first:?}");
    }

    #[test]
    fn shared_pins_refcount_across_owners() {
        // Two tenants of a shared executor pool pin the same trunk output.
        // One tenant finishing (and unpinning) must not expose the entry to
        // eviction while the other still holds it — the single-owner
        // assumption behind the boolean `pin` flag.
        let c = CacheManager::new(
            100,
            CachePolicy::Lru {
                admission_fraction: 1.0,
            },
        );
        assert!(c.put(1, val(1), 60));
        assert!(c.pin_shared(1));
        assert!(c.pin_shared(1));
        assert_eq!(c.pin_count(1), 2);
        assert!(c.unpin_shared(1));
        // Still pinned by the second owner: an over-budget offer must be
        // rejected, not satisfied by evicting the held entry.
        assert!(!c.put(2, val(2), 50));
        assert!(c.get(1).is_some(), "entry evicted while still pinned");
        assert!(c.unpin_shared(1));
        assert_eq!(c.pin_count(1), 0);
        assert!(!c.unpin_shared(1), "saturating decrement reported success");
        // Last pin released: now the entry is a legal victim.
        assert!(c.put(2, val(2), 50));
        assert!(c.get(1).is_none(), "unpinned entry survived eviction");
    }

    #[test]
    fn demote_spares_entries_another_owner_has_pinned() {
        let set: HashSet<u64> = [1].into_iter().collect();
        let c = CacheManager::new(100, CachePolicy::Pinned(set));
        assert!(c.put(1, val(1), 40));
        assert!(c.pin_shared(1));
        // A tenant demoting the key closes the membership but must not
        // drop the bytes another tenant is mid-read on.
        assert!(!c.demote(1), "demote dropped a shared-pinned entry");
        assert!(c.get(1).is_some());
        assert_eq!(c.used(), 40);
        assert!(!c.policy_admits(1), "membership stayed open");
        // After the last unpin the demote takes effect as usual.
        assert!(c.unpin_shared(1));
        assert!(c.demote(1));
        assert!(c.get(1).is_none());
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn pin_shared_on_missing_key_reports_absence() {
        let c = CacheManager::new(
            100,
            CachePolicy::Lru {
                admission_fraction: 1.0,
            },
        );
        assert!(!c.pin_shared(9));
        assert!(!c.unpin_shared(9));
        assert_eq!(c.pin_count(9), 0);
    }

    #[test]
    fn hit_miss_counting() {
        let c = CacheManager::new(
            100,
            CachePolicy::Lru {
                admission_fraction: 1.0,
            },
        );
        c.put(1, val(1), 10);
        let _ = c.get(1);
        let _ = c.get(2);
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
    }
}
