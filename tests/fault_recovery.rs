//! End-to-end fault injection and recovery: a pipeline fit under a seeded
//! [`FaultPlan`] — partition task failures, straggler delays, and cache-entry
//! loss all enabled — must (a) produce results identical to the fault-free
//! fit under the same data seed, (b) never panic on a missing cache entry
//! (the lineage-recompute path), and (c) report nonzero retry/speculation/
//! recovery statistics in the [`PipelineReport`] that match the trace-sink
//! event counts and the metrics counters.

use keystoneml::prelude::*;

/// Busy-waits per record so every partition does measurable work (the
/// speculation detector compares real per-partition busy times).
struct BusyWork(u64);
impl Transformer<Vec<f64>, Vec<f64>> for BusyWork {
    fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
        let mut acc = 0.0f64;
        for i in 0..self.0 * 100 {
            acc += (i as f64).sqrt();
        }
        std::hint::black_box(acc);
        x.clone()
    }
}

/// An iterative estimator that re-reads its input once per pass through the
/// lazy handle, so fit-time cache hits (and injected cache losses) happen.
struct MultiPassMean {
    passes: u32,
}
impl Estimator<Vec<f64>, Vec<f64>> for MultiPassMean {
    fn fit(
        &self,
        _data: &DistCollection<Vec<f64>>,
        _ctx: &ExecContext,
    ) -> Box<dyn Transformer<Vec<f64>, Vec<f64>>> {
        unreachable!("fit_lazy overridden")
    }
    fn fit_lazy(
        &self,
        data: &dyn Fn() -> DistCollection<Vec<f64>>,
        _ctx: &ExecContext,
    ) -> Box<dyn Transformer<Vec<f64>, Vec<f64>>> {
        let mut mu = 0.0;
        for _ in 0..self.passes {
            let d = data();
            let n = d.count().max(1) as f64;
            mu = d.aggregate(0.0, |a, x| a + x[0], |a, b| a + b) / n;
        }
        struct Shift(f64);
        impl Transformer<Vec<f64>, Vec<f64>> for Shift {
            fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
                x.iter().map(|v| v - self.0).collect()
            }
        }
        Box::new(Shift(mu))
    }
    fn weight(&self) -> u32 {
        self.passes
    }
}

fn train_data() -> DistCollection<Vec<f64>> {
    DistCollection::from_vec((0..768).map(|i| vec![i as f64, 1.0]).collect(), 4)
}

fn pipeline(train: &DistCollection<Vec<f64>>) -> Pipeline<Vec<f64>, Vec<f64>> {
    Pipeline::<Vec<f64>, Vec<f64>>::input()
        .and_then(BusyWork(20))
        .and_then_est(MultiPassMean { passes: 6 }, train)
}

fn options() -> PipelineOptions {
    // LRU caching with a fixed budget keeps cache traffic (and therefore
    // the deterministic cache-loss probe sequence) independent of measured
    // wall times; operator selection is off for the same reason.
    PipelineOptions {
        caching: CachingStrategy::Lru {
            admission_fraction: 1.0,
        },
        mem_budget: Some(1 << 30),
        profile: ProfileOptions {
            sizes: vec![64, 128],
            seed: 7,
            select_operators: false,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn fit_and_apply(ctx: &ExecContext) -> (Vec<Vec<f64>>, FitReport) {
    let train = train_data();
    let (fitted, report) = pipeline(&train).fit(ctx, &options());
    let test = DistCollection::from_vec((0..32).map(|i| vec![i as f64, 2.0]).collect(), 4);
    (fitted.apply(&test, ctx).collect(), report)
}

#[test]
fn faulted_fit_recovers_and_accounts_for_it() {
    // Fault-free baseline.
    let clean_ctx = ExecContext::default_cluster();
    let (clean_out, _clean_report) = fit_and_apply(&clean_ctx);

    // All three fault classes at aggressive rates. The straggler delay
    // floor is far above the pipeline's natural per-partition busy time,
    // so injected stragglers reliably cross the 2×-median detector.
    let plan = FaultSpec::new(0xC0FFEE)
        .with_task_failures(0.5)
        .with_stragglers(0.5)
        .with_cache_loss(0.6)
        .with_straggler_min_delay_us(20_000)
        .into_plan();
    let ctx = ExecContext::default_cluster().with_faults(plan);
    let (faulted_out, report) = fit_and_apply(&ctx);

    // (a) Identical results under the same data seed: faults perturb the
    // schedule and the accounting, never the data.
    assert_eq!(clean_out, faulted_out, "faults changed pipeline results");

    // (b) is implicit: cache losses at 50% forced lineage recomputes and
    // nothing panicked.
    let obs = &report.observability;
    assert!(obs.retries > 0, "no retries despite 50% task failure rate");
    assert!(
        obs.speculative_wins > 0,
        "no speculative wins despite injected stragglers"
    );
    assert!(obs.cache_losses > 0, "no cache losses at 50% loss rate");
    assert!(obs.recovery_secs > 0.0);

    // (c) The report's totals match the raw trace-event counts...
    let mut retry_events = 0u64;
    let mut win_events = 0u64;
    let mut loss_events = 0u64;
    for e in ctx.tracer.events() {
        match e.event {
            TraceEvent::TaskRetry { .. } => retry_events += 1,
            TraceEvent::SpeculativeWin { .. } => win_events += 1,
            TraceEvent::CacheLost { .. } => loss_events += 1,
            _ => {}
        }
    }
    assert_eq!(obs.retries, retry_events);
    assert_eq!(obs.speculative_wins, win_events);
    assert_eq!(obs.cache_losses, loss_events);

    // ...and the metrics counters.
    assert_eq!(ctx.metrics.counter("faults.retries"), retry_events);
    assert_eq!(ctx.metrics.counter("faults.speculative_wins"), win_events);
    assert_eq!(ctx.metrics.counter("faults.cache_losses"), loss_events);

    // Per-node rows sum to the totals.
    assert_eq!(
        obs.nodes.iter().map(|n| n.retries).sum::<u64>(),
        retry_events
    );
    assert_eq!(
        obs.nodes.iter().map(|n| n.speculative_wins).sum::<u64>(),
        win_events
    );

    // Recovery work is charged to the simulated clock under dedicated
    // stages, and spans record their absorbed retries / lost races.
    let entries = ctx.sim.entries();
    assert!(
        entries.iter().any(|e| e.stage.starts_with("recovery:")),
        "no recovery stage on the simulated clock"
    );
    assert!(
        entries.iter().any(|e| e.stage.starts_with("speculative:")),
        "no speculative stage on the simulated clock"
    );
    let spans = ctx.metrics.spans();
    assert_eq!(
        spans.iter().map(|s| u64::from(s.retries)).sum::<u64>(),
        retry_events
    );
    assert!(
        spans.iter().any(|s| s.speculative),
        "no span tagged speculative"
    );

    // The renderers surface the new columns.
    let table = obs.render_table();
    assert!(table.contains("retry"));
    assert!(table.contains("spec"));
    let json = obs.to_json();
    assert!(json.contains("\"retries\":"));
    assert!(json.contains("\"recovery_secs\":"));
}

#[test]
fn same_fault_seed_reproduces_the_same_schedule() {
    let run = || {
        let plan = FaultSpec::new(42)
            .with_task_failures(0.5)
            .with_cache_loss(0.5)
            .into_plan();
        let ctx = ExecContext::default_cluster().with_faults(plan);
        let (out, report) = fit_and_apply(&ctx);
        let obs = report.observability;
        (out, obs.retries, obs.cache_losses)
    };
    let (out1, retries1, losses1) = run();
    let (out2, retries2, losses2) = run();
    assert_eq!(out1, out2);
    assert_eq!(retries1, retries2, "retry schedule not reproducible");
    assert_eq!(losses1, losses2, "cache-loss schedule not reproducible");
    assert!(retries1 > 0 && losses1 > 0);
}
