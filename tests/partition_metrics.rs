//! Partition-level observability, end to end: fitting a real pipeline
//! leaves one [`TaskSpan`] per partition for every partition-parallel node,
//! the [`PipelineReport`] join carries skew/utilization for those nodes,
//! and the Chrome trace export is valid trace-event JSON.

use std::collections::HashMap;

use keystoneml::dataflow::metrics::microjson;
use keystoneml::prelude::*;

/// Busy-waits per record so every partition does measurable work.
struct BusyWork(u64);
impl Transformer<Vec<f64>, Vec<f64>> for BusyWork {
    fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
        let mut acc = 0.0f64;
        for i in 0..self.0 * 100 {
            acc += (i as f64).sqrt();
        }
        std::hint::black_box(acc);
        x.clone()
    }
}

/// Subtracts the training mean of the first component (uses `aggregate`,
/// one of the instrumented partition-parallel operations).
struct MeanShift;
impl Estimator<Vec<f64>, Vec<f64>> for MeanShift {
    fn fit(
        &self,
        data: &DistCollection<Vec<f64>>,
        _ctx: &ExecContext,
    ) -> Box<dyn Transformer<Vec<f64>, Vec<f64>>> {
        let n = data.count().max(1) as f64;
        let mu = data.aggregate(0.0, |a, x| a + x[0], |a, b| a + b) / n;
        struct Shift(f64);
        impl Transformer<Vec<f64>, Vec<f64>> for Shift {
            fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
                x.iter().map(|v| v - self.0).collect()
            }
        }
        Box::new(Shift(mu))
    }
}

fn fit_pipeline() -> (ExecContext, FitReport) {
    let train = DistCollection::from_vec((0..768).map(|i| vec![i as f64, 1.0]).collect(), 4);
    let pipe = Pipeline::<Vec<f64>, Vec<f64>>::input()
        .and_then(BusyWork(20))
        .and_then_est(MeanShift, &train);
    let ctx = ExecContext::default_cluster();
    let opts = PipelineOptions {
        profile: ProfileOptions {
            sizes: vec![64, 128],
            seed: 7,
            select_operators: true,
            ..Default::default()
        },
        ..Default::default()
    };
    let (_fitted, report) = pipe.fit(&ctx, &opts);
    (ctx, report)
}

#[test]
fn every_instrumented_node_has_a_span_per_partition() {
    let (ctx, report) = fit_pipeline();
    let spans = ctx.metrics.spans();
    assert!(!spans.is_empty(), "fit recorded no task spans");

    // Every span is well formed: a stamped executor node, a worker lane
    // within the cluster, and a non-negative duration.
    for s in &spans {
        assert!(s.stage_id.is_some(), "span {:?} missing node id", s.stage);
        assert!(s.end_us >= s.start_us, "negative duration in {:?}", s);
        assert!(s.duration_secs() >= 0.0);
        assert!(
            s.worker < ctx.resources.workers,
            "worker lane {} out of range",
            s.worker
        );
    }

    // Per node: the partitions covered form a contiguous 0..=max set with
    // at least one span each — no partition of a partition-parallel
    // operation escapes measurement.
    let mut by_node: HashMap<u64, Vec<&keystoneml::prelude::TaskSpan>> = HashMap::new();
    for s in &spans {
        by_node.entry(s.stage_id.unwrap()).or_default().push(s);
    }
    for (node, group) in &by_node {
        let max_p = group.iter().map(|s| s.partition).max().unwrap();
        for p in 0..=max_p {
            assert!(
                group.iter().any(|s| s.partition == p),
                "node {node} covered partition {max_p} but not {p}"
            );
        }
        // Lane attribution records the pool thread that actually ran the
        // partition, so two spans on the same (node, lane) can never
        // overlap in time — a lane is one thread running tasks serially.
        let mut by_lane: HashMap<usize, Vec<(u64, u64)>> = HashMap::new();
        for s in group {
            by_lane
                .entry(s.worker)
                .or_default()
                .push((s.start_us, s.end_us));
        }
        for (lane, mut intervals) in by_lane {
            intervals.sort_unstable();
            for w in intervals.windows(2) {
                assert!(
                    w[1].0 >= w[0].1,
                    "node {node} lane {lane}: spans {:?} and {:?} overlap",
                    w[0],
                    w[1]
                );
            }
        }
    }

    // Every executed operator node in the report owns at least one span,
    // and the skew join landed on its row.
    for n in &report.observability.nodes {
        let is_op = n.label.starts_with("transform:")
            || n.label.starts_with("fit:")
            || n.label.starts_with("apply:");
        if n.execs > 0 && is_op {
            assert!(n.task_spans >= 1, "executed node {} has no spans", n.label);
            assert!(n.partitions >= 1);
            let skew = n.skew_ratio.expect("skew joined");
            let util = n.utilization.expect("utilization joined");
            assert!(skew >= 1.0 && skew.is_finite(), "bad skew {skew}");
            assert!((0.0..=1.0).contains(&util), "bad utilization {util}");
        }
    }
}

#[test]
fn chrome_trace_from_fit_is_valid_trace_event_json() {
    let (ctx, _report) = fit_pipeline();
    let trace = chrome_trace_json(&ctx.metrics, &ctx.sim);
    let doc =
        microjson::parse(&trace).unwrap_or_else(|off| panic!("trace JSON invalid at byte {off}"));
    let events = doc.as_arr().expect("trace is a JSON array");
    assert!(!events.is_empty());

    let mut pids_with_spans = Vec::new();
    for e in events {
        let ph = e.get("ph").and_then(|v| v.as_str()).expect("ph field");
        match ph {
            "X" => {
                // Complete events carry pid/tid/ts/dur/name.
                let pid = e.get("pid").and_then(|v| v.as_f64()).expect("pid");
                for key in ["tid", "ts", "dur"] {
                    let v = e.get(key).and_then(|v| v.as_f64());
                    assert!(v.is_some_and(|x| x >= 0.0), "bad {key} in {ph} event");
                }
                assert!(e.get("name").and_then(|v| v.as_str()).is_some());
                pids_with_spans.push(pid as u64);
            }
            "M" => {
                assert!(e.get("name").and_then(|v| v.as_str()).is_some());
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    // Both process groups render: measured worker lanes (pid 1) and the
    // simulated cluster ledger (pid 2 — default_cluster charges SimClock).
    assert!(
        pids_with_spans.contains(&1),
        "no measured worker-lane events"
    );
    assert!(pids_with_spans.contains(&2), "no simulated-cluster events");
}
