//! End-to-end observability: fitting a deterministic pipeline yields a
//! [`PipelineReport`] whose predicted-vs-actual errors are finite and
//! bounded, whose cache counters reflect real reuse, and whose JSON and
//! table renderings are well formed. Structural outputs (event order,
//! cache picks) are identical across repeated runs with the same seeds.

use keystoneml::core::report::json_is_balanced;
use keystoneml::core::trace::TraceEvent;
use keystoneml::prelude::*;

/// Busy-waits per record so profiled costs are linear in the input size —
/// the regime where execution subsampling (§4.1) is accurate.
struct BusyWork(u64);
impl Transformer<Vec<f64>, Vec<f64>> for BusyWork {
    fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
        let mut acc = 0.0f64;
        for i in 0..self.0 * 100 {
            acc += (i as f64).sqrt();
        }
        std::hint::black_box(acc);
        x.clone()
    }
}

/// Subtracts the training mean of the first component. Deterministic.
struct MeanShift;
impl Estimator<Vec<f64>, Vec<f64>> for MeanShift {
    fn fit(
        &self,
        data: &DistCollection<Vec<f64>>,
        _ctx: &ExecContext,
    ) -> Box<dyn Transformer<Vec<f64>, Vec<f64>>> {
        let n = data.count().max(1) as f64;
        let mu = data.aggregate(0.0, |a, x| a + x[0], |a, b| a + b) / n;
        struct Shift(f64);
        impl Transformer<Vec<f64>, Vec<f64>> for Shift {
            fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
                x.iter().map(|v| v - self.0).collect()
            }
        }
        Box::new(Shift(mu))
    }
}

fn train_data() -> DistCollection<Vec<f64>> {
    DistCollection::from_vec((0..768).map(|i| vec![i as f64, 1.0]).collect(), 4)
}

fn opts() -> PipelineOptions {
    PipelineOptions {
        profile: ProfileOptions {
            sizes: vec![64, 128],
            seed: 7,
            select_operators: true,
            ..Default::default()
        },
        caching: CachingStrategy::Greedy,
        mem_budget: Some(64 << 20),
        ..Default::default()
    }
}

/// Shared expensive prefix feeding two estimators: CSE merges the prefix
/// copies and the materializer should cache the reused intermediate.
fn fit_pipeline() -> (ExecContext, FitReport) {
    let train = train_data();
    let pipe = Pipeline::<Vec<f64>, Vec<f64>>::input()
        .and_then(BusyWork(20))
        .and_then_est(MeanShift, &train)
        .and_then_est(MeanShift, &train);
    let ctx = ExecContext::default_cluster();
    let (_fitted, report) = pipe.fit(&ctx, &opts());
    (ctx, report)
}

#[test]
fn report_joins_predictions_with_bounded_error() {
    let (_ctx, report) = fit_pipeline();
    let obs = &report.observability;
    assert!(!obs.nodes.is_empty(), "report has no rows");
    assert!(obs.events > 0, "no trace events recorded");

    // At least one node carries a predicted-vs-actual comparison, and every
    // error that exists is finite. Busy-wait work is linear in the input,
    // so subsampling extrapolations land within a generous constant factor
    // even on noisy CI machines.
    let max_err = obs
        .max_time_rel_error()
        .expect("no node has both a prediction and an observation");
    assert!(max_err.is_finite(), "non-finite relative error");
    assert!(max_err < 25.0, "time relative error unbounded: {max_err}");

    // Memory extrapolation is exact for fixed-width records (§4.1 reports
    // it as nearly perfect).
    if let Some(bytes_err) = obs.max_bytes_rel_error() {
        assert!(bytes_err.is_finite());
        assert!(
            bytes_err < 0.5,
            "bytes relative error too large: {bytes_err}"
        );
    }

    // Executed rows account their executions.
    for n in &obs.nodes {
        if n.execs > 0 {
            assert!(n.actual_wall_secs >= 0.0 && n.actual_wall_secs.is_finite());
        }
    }
}

#[test]
fn cache_counters_reflect_real_reuse() {
    let (ctx, report) = fit_pipeline();
    let obs = &report.observability;

    // The shared BusyWork(train) intermediate is requested by both
    // estimator branches; with greedy materialization it must be cached:
    // one miss on first computation, at least one hit on reuse.
    assert!(!report.cache_set.is_empty(), "greedy cached nothing");
    assert!(obs.cache_hits >= 1, "no cache hit despite shared prefix");
    assert!(obs.cache_misses >= 1);

    // Per-node consistency: admissions only follow misses, evictions never
    // exceed admissions, and pinned-set totals add up.
    for n in &obs.nodes {
        assert!(
            n.cache.admissions <= n.cache.misses,
            "node {} admitted {} times with only {} misses",
            n.label,
            n.cache.admissions,
            n.cache.misses
        );
        assert!(n.cache.evictions <= n.cache.admissions);
    }

    // The tracer's totals and the report's totals are the same aggregation.
    let counters = ctx.tracer.cache_counters();
    let hits: u64 = counters.values().map(|c| c.hits).sum();
    let misses: u64 = counters.values().map(|c| c.misses).sum();
    assert_eq!(hits, obs.cache_hits);
    assert_eq!(misses, obs.cache_misses);
}

#[test]
fn optimizer_decisions_appear_as_events() {
    let (ctx, report) = fit_pipeline();
    let events = ctx.tracer.events();
    // CSE merged the duplicated BusyWork prefix.
    assert!(report.eliminated_nodes > 0);
    assert!(
        events
            .iter()
            .any(|e| matches!(e.event, TraceEvent::CseMerge { duplicates, .. } if duplicates > 0)),
        "no CseMerge event despite eliminated nodes"
    );
    // Greedy picks surface with positive estimated savings matching the set.
    let picks: Vec<_> = events
        .iter()
        .filter_map(|e| match &e.event {
            TraceEvent::MaterializePick {
                node,
                est_saving_secs,
                ..
            } => Some((*node, *est_saving_secs)),
            _ => None,
        })
        .collect();
    assert_eq!(picks.len(), report.cache_set.len());
    for (node, saving) in &picks {
        assert!(report.cache_set.contains(node));
        assert!(*saving > 0.0);
    }
}

#[test]
fn report_serializes_to_json_and_table() {
    let (_ctx, report) = fit_pipeline();
    let json = report.observability.to_json();
    assert!(json_is_balanced(&json), "malformed JSON: {json}");
    for key in [
        "\"predicted_secs\"",
        "\"actual_wall_secs\"",
        "\"cache\"",
        "\"hits\"",
        "\"misses\"",
        "\"time_rel_error\"",
    ] {
        assert!(json.contains(key), "JSON missing {key}");
    }
    let table = report.observability.render_table();
    assert!(table.contains("pred(s)") && table.contains("err%"));
    assert!(table.lines().count() >= report.observability.nodes.len() + 2);
}

#[test]
fn structural_outputs_are_deterministic_across_runs() {
    let (ctx1, r1) = fit_pipeline();
    let (ctx2, r2) = fit_pipeline();
    assert_eq!(r1.cache_set, r2.cache_set);
    assert_eq!(r1.cache_set_labels, r2.cache_set_labels);
    assert_eq!(r1.eliminated_nodes, r2.eliminated_nodes);
    assert_eq!(r1.choices, r2.choices);
    // Node completion order (timings differ; structure must not).
    assert_eq!(
        ctx1.tracer.completion_order(),
        ctx2.tracer.completion_order()
    );
    let labels = |r: &FitReport| -> Vec<String> {
        r.observability
            .nodes
            .iter()
            .map(|n| n.label.clone())
            .collect()
    };
    assert_eq!(labels(&r1), labels(&r2));
}
