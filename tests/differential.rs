//! Tier-1 differential-equivalence sweep (the testkit's headline oracle).
//!
//! Every seed in the pinned range drives one random well-typed pipeline
//! through the full 224-cell configuration matrix — optimization level ×
//! materialization budget × caching strategy × partition count × seeded
//! fault plan × whole-stage fusion on/off × columnar lowering on/off ×
//! adaptive re-optimization on/off — and the held-out predictions must be
//! bit-identical in every cell, with the four physical variants (fusion ×
//! columnar) of each configuration choosing identical materialization
//! picks and every adaptive cell staying within the charged decision
//! overhead of its static twin's simulated fit cost. A
//! failing cell prints (and writes to `target/testkit-failure.txt`,
//! which CI uploads as an artifact) the seed, the generated recipe, the DAG
//! summary, and the one-command repro:
//!
//! ```text
//! KEYSTONE_TESTKIT_SEED=<seed> cargo test --test differential -- --nocapture
//! ```
//!
//! `KEYSTONE_TESTKIT_SEED` accepts a single seed (`17`) or a half-open
//! range (`0..50`).

use keystone_testkit::{oracle, serve};

#[test]
fn optimizer_configurations_are_output_equivalent() {
    let seeds = oracle::seeds_from_env(0, 25);
    let mut cells_checked = 0usize;
    for &seed in &seeds {
        match oracle::check_seed(seed) {
            Ok(report) => cells_checked += report.cells,
            Err(report) => {
                let artifact = oracle::write_failure_artifact(&report)
                    .map(|p| format!("failure report written to {}\n", p.display()))
                    .unwrap_or_default();
                panic!("{report}{artifact}");
            }
        }
    }
    // The pinned sweep must cover at least 25 pipelines x 224 cells; an env
    // override (targeted repro) may legitimately run fewer.
    if std::env::var("KEYSTONE_TESTKIT_SEED").is_err() {
        assert!(
            seeds.len() >= 25 && cells_checked >= 25 * 224,
            "pinned sweep shrank: {} seeds, {} cells",
            seeds.len(),
            cells_checked
        );
    }
}

/// Serving-equivalence axis: one-record-at-a-time requests through the
/// `keystone-serve` micro-batcher (batch-size × linger sweep, including
/// batch=1, with and without an injected fault plan) must be bit-identical
/// to one batch `apply()`. Shares `KEYSTONE_TESTKIT_SEED` repro semantics
/// with the optimizer matrix above.
#[test]
fn serving_is_equivalent_to_batch_apply() {
    let seeds = oracle::seeds_from_env(0, 25);
    let mut configs_checked = 0usize;
    for &seed in &seeds {
        match serve::check_serving(seed) {
            Ok(report) => configs_checked += report.configs,
            Err(report) => {
                let artifact = oracle::write_failure_artifact(&report)
                    .map(|p| format!("failure report written to {}\n", p.display()))
                    .unwrap_or_default();
                panic!("{report}{artifact}");
            }
        }
    }
    if std::env::var("KEYSTONE_TESTKIT_SEED").is_err() {
        let per_seed = 2 * 2 * serve::SERVING_POLICIES.len();
        assert!(
            configs_checked >= 25 * per_seed,
            "pinned serving sweep shrank: {} seeds, {} configs",
            seeds.len(),
            configs_checked
        );
    }
}
