//! Tier-1 differential-equivalence sweep (the testkit's headline oracle).
//!
//! Every seed in the pinned range drives one random well-typed pipeline
//! through the full 224-cell configuration matrix — optimization level ×
//! materialization budget × caching strategy × partition count × seeded
//! fault plan × whole-stage fusion on/off × columnar lowering on/off ×
//! adaptive re-optimization on/off — and the held-out predictions must be
//! bit-identical in every cell, with the four physical variants (fusion ×
//! columnar) of each configuration choosing identical materialization
//! picks and every adaptive cell staying within the charged decision
//! overhead of its static twin's simulated fit cost. A
//! failing cell prints (and writes to `target/testkit-failure.txt`,
//! which CI uploads as an artifact) the seed, the generated recipe, the DAG
//! summary, and the one-command repro:
//!
//! ```text
//! KEYSTONE_TESTKIT_SEED=<seed> cargo test --test differential -- --nocapture
//! ```
//!
//! `KEYSTONE_TESTKIT_SEED` accepts a single seed (`17`) or a half-open
//! range (`0..50`).

use keystone_testkit::{forest, oracle, serve};

#[test]
fn optimizer_configurations_are_output_equivalent() {
    let seeds = oracle::seeds_from_env(0, 25);
    let mut cells_checked = 0usize;
    for &seed in &seeds {
        match oracle::check_seed(seed) {
            Ok(report) => cells_checked += report.cells,
            Err(report) => {
                let artifact = oracle::write_failure_artifact(&report)
                    .map(|p| format!("failure report written to {}\n", p.display()))
                    .unwrap_or_default();
                panic!("{report}{artifact}");
            }
        }
    }
    // The pinned sweep must cover at least 25 pipelines x 224 cells; an env
    // override (targeted repro) may legitimately run fewer.
    if std::env::var("KEYSTONE_TESTKIT_SEED").is_err() {
        assert!(
            seeds.len() >= 25 && cells_checked >= 25 * 224,
            "pinned sweep shrank: {} seeds, {} cells",
            seeds.len(),
            cells_checked
        );
    }
}

/// Serving-equivalence axis: one-record-at-a-time requests through the
/// `keystone-serve` micro-batcher (batch-size × linger sweep, including
/// batch=1, with and without an injected fault plan) must be bit-identical
/// to one batch `apply()`. Shares `KEYSTONE_TESTKIT_SEED` repro semantics
/// with the optimizer matrix above.
/// Multi-tenant forest axis: each seed generates 2–4 pipeline variants
/// sharing a seeded trunk (0–4 stages of controlled prefix overlap), fit
/// both independently and through `fit_forest`'s merged plan, across an
/// opt-level × budget × caching × fusion × columnar grid. Per-tenant
/// held-out predictions must be bit-identical between the two, and the
/// forest's total simulated cost may never exceed the sum of the solo
/// fits. Shares `KEYSTONE_TESTKIT_SEED` repro semantics with the matrix
/// above.
#[test]
fn forest_fit_is_tenant_equivalent_and_cost_dominant() {
    let seeds = oracle::seeds_from_env(0, 15);
    let mut cells_checked = 0usize;
    let mut shared_cells = 0usize;
    for &seed in &seeds {
        match forest::check_forest_seed(seed) {
            Ok(report) => {
                cells_checked += report.cells;
                shared_cells += report.shared_cells;
            }
            Err(report) => {
                let artifact = oracle::write_failure_artifact(&report)
                    .map(|p| format!("failure report written to {}\n", p.display()))
                    .unwrap_or_default();
                panic!("{report}{artifact}");
            }
        }
    }
    if std::env::var("KEYSTONE_TESTKIT_SEED").is_err() {
        let per_seed = forest::forest_matrix().len();
        assert!(
            cells_checked >= 15 * per_seed,
            "pinned forest sweep shrank: {} seeds, {} cells",
            seeds.len(),
            cells_checked
        );
        // Sharing must actually engage somewhere in the pinned sweep —
        // otherwise the dominance check degenerates to testing the
        // fallback path only.
        assert!(
            shared_cells > 0,
            "no cell in the pinned sweep took the shared merged-plan path"
        );
    }
}

#[test]
fn serving_is_equivalent_to_batch_apply() {
    let seeds = oracle::seeds_from_env(0, 25);
    let mut configs_checked = 0usize;
    for &seed in &seeds {
        match serve::check_serving(seed) {
            Ok(report) => configs_checked += report.configs,
            Err(report) => {
                let artifact = oracle::write_failure_artifact(&report)
                    .map(|p| format!("failure report written to {}\n", p.display()))
                    .unwrap_or_default();
                panic!("{report}{artifact}");
            }
        }
    }
    if std::env::var("KEYSTONE_TESTKIT_SEED").is_err() {
        let per_seed = 2 * 2 * serve::SERVING_POLICIES.len();
        assert!(
            configs_checked >= 25 * per_seed,
            "pinned serving sweep shrank: {} seeds, {} configs",
            seeds.len(),
            configs_checked
        );
    }
}
