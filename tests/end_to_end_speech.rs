//! End-to-end integration test: the TIMIT-style random-feature pipeline
//! (§5.1) with `gather`-merged branches learns multi-class structure, and
//! materialization strategies do not change results.

use keystoneml::prelude::*;
use keystoneml::solvers::logistic::one_hot;
use keystoneml::workloads::pipelines::{predictions, speech_pipeline, SpeechPipelineConfig};
use keystoneml::workloads::TimitLike;

fn dataset(
    classes: usize,
) -> (
    keystoneml::workloads::dense_gen::DenseDataset,
    keystoneml::workloads::dense_gen::DenseDataset,
) {
    TimitLike {
        separation: 4.0,
        ..TimitLike::new(800, 24, classes)
    }
    .generate_split(0.25)
}

#[test]
fn speech_pipeline_beats_chance_handily() {
    let classes = 10;
    let (train, test) = dataset(classes);
    let labels = one_hot(&train.labels, classes);
    let cfg = SpeechPipelineConfig {
        blocks: 4,
        block_dim: 64,
        gamma: 0.08,
        ..Default::default()
    };
    let pipe = speech_pipeline(&cfg, &train.data, &labels);
    let ctx = ExecContext::calibrated(8);
    let (fitted, _) = pipe.fit(&ctx, &demo_opts());
    let acc = accuracy(
        &predictions(&fitted.apply(&test.data, &ctx)),
        &test.labels.collect(),
    );
    assert!(
        acc > 0.6,
        "accuracy {} vs chance {}",
        acc,
        1.0 / classes as f64
    );
}

#[test]
fn caching_strategy_does_not_change_predictions() {
    let classes = 6;
    let (train, test) = dataset(classes);
    let labels = one_hot(&train.labels, classes);
    let cfg = SpeechPipelineConfig {
        blocks: 2,
        block_dim: 32,
        gamma: 0.08,
        ..Default::default()
    };
    let mut outputs = Vec::new();
    for caching in [
        CachingStrategy::Greedy,
        CachingStrategy::Lru {
            admission_fraction: 1.0,
        },
        CachingStrategy::RuleBased,
    ] {
        let pipe = speech_pipeline(&cfg, &train.data, &labels);
        let ctx = ExecContext::calibrated(8);
        let opts = demo_opts().with_caching(caching);
        let (fitted, _) = pipe.fit(&ctx, &opts);
        outputs.push(predictions(&fitted.apply(&test.data, &ctx)));
    }
    assert_eq!(outputs[0], outputs[1], "greedy vs lru diverged");
    assert_eq!(outputs[1], outputs[2], "lru vs rule-based diverged");
}

#[test]
fn more_random_feature_blocks_do_not_hurt() {
    let classes = 6;
    let (train, test) = dataset(classes);
    let labels = one_hot(&train.labels, classes);
    let acc_for = |blocks: usize| {
        let cfg = SpeechPipelineConfig {
            blocks,
            block_dim: 32,
            gamma: 0.08,
            ..Default::default()
        };
        let pipe = speech_pipeline(&cfg, &train.data, &labels);
        let ctx = ExecContext::calibrated(8);
        let (fitted, _) = pipe.fit(&ctx, &demo_opts());
        accuracy(
            &predictions(&fitted.apply(&test.data, &ctx)),
            &test.labels.collect(),
        )
    };
    let small = acc_for(1);
    let large = acc_for(6);
    assert!(
        large >= small - 0.05,
        "more features should help or tie: {} -> {}",
        small,
        large
    );
}

/// Pipeline options with profiling samples scaled to this test's small
/// synthetic dataset (the paper's 512/1024 samples assume millions of
/// records; here they would be the whole dataset).
fn demo_opts() -> PipelineOptions {
    PipelineOptions {
        profile: ProfileOptions {
            sizes: vec![96, 192],
            ..Default::default()
        },
        ..Default::default()
    }
}
