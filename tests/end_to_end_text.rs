//! End-to-end integration test: the Amazon-style text pipeline (Fig. 2)
//! learns planted sentiment well above chance, and all three optimization
//! levels (Fig. 9) produce statistically equivalent models.

use keystoneml::prelude::*;
use keystoneml::solvers::logistic::one_hot;
use keystoneml::workloads::pipelines::{
    predictions, text_classification_pipeline, TextPipelineConfig,
};
use keystoneml::workloads::AmazonLike;

fn run_level(opts: &PipelineOptions) -> f64 {
    let (train, test) = AmazonLike::with_docs(600).generate_split(0.25);
    let labels = one_hot(&train.labels, 2);
    let cfg = TextPipelineConfig {
        max_features: 1_000,
        ..Default::default()
    };
    let pipe = text_classification_pipeline(&cfg, &train.docs, &labels);
    let ctx = ExecContext::calibrated(8);
    let (fitted, _) = pipe.fit(&ctx, opts);
    let scores = fitted.apply(&test.docs, &ctx);
    accuracy(&predictions(&scores), &test.labels.collect())
}

#[test]
fn full_optimizer_learns_sentiment() {
    let acc = run_level(&demo_opts());
    assert!(acc > 0.85, "accuracy {} too low", acc);
}

#[test]
fn unoptimized_level_matches_statistically() {
    let none = run_level(&PipelineOptions {
        level: OptLevel::None,
        ..demo_opts()
    });
    let full = run_level(&demo_opts());
    assert!(
        (none - full).abs() < 0.05,
        "optimization changed statistics: {} vs {}",
        none,
        full
    );
}

#[test]
fn optimizer_reports_solver_choice_and_cse() {
    let (train, _) = AmazonLike::with_docs(400).generate_split(0.25);
    let labels = one_hot(&train.labels, 2);
    let cfg = TextPipelineConfig {
        max_features: 500,
        ..Default::default()
    };
    let pipe = text_classification_pipeline(&cfg, &train.docs, &labels);
    let ctx = ExecContext::calibrated(8);
    let (_, report) = pipe.fit(&ctx, &demo_opts());
    // The text pipeline duplicates its tokenization prefix across the
    // CommonSparseFeatures and solver branches: CSE must merge it.
    assert!(report.eliminated_nodes > 0, "no CSE on text pipeline");
    // The optimizable solver must have been resolved to a physical op.
    assert!(
        report
            .choices
            .iter()
            .any(|(n, _)| n.contains("LinearSolver")),
        "no solver choice in {:?}",
        report.choices
    );
    // At this toy scale the exact solver is genuinely cheapest (300 docs,
    // 500 features: one pass beats 60 iteration barriers); the paper-scale
    // regime where L-BFGS wins is asserted against the cost models in
    // keystone-solvers' `picks_lbfgs_for_sparse_text` unit test. Here we
    // check the choice resolves to a real physical operator.
    let (_, choice) = report
        .choices
        .iter()
        .find(|(n, _)| n.contains("LinearSolver"))
        .expect("solver choice");
    assert!(
        ["lbfgs", "local-qr", "dist-qr", "block"].contains(&choice.as_str()),
        "unknown physical operator {}",
        choice
    );
}

/// Pipeline options with profiling samples scaled to this test's small
/// synthetic dataset (the paper's 512/1024 samples assume millions of
/// records; here they would be the whole dataset).
fn demo_opts() -> PipelineOptions {
    PipelineOptions {
        profile: ProfileOptions {
            sizes: vec![96, 192],
            ..Default::default()
        },
        ..Default::default()
    }
}
