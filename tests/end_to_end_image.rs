//! End-to-end integration tests: the VOC-style Fisher-vector pipeline and
//! the CIFAR-style convolutional pipeline on synthetic texture classes.

use keystoneml::prelude::*;
use keystoneml::solvers::logistic::one_hot;
use keystoneml::workloads::image_gen::ImageDatasetSpec;
use keystoneml::workloads::pipelines::{
    cifar_pipeline, image_classification_pipeline, predictions, CifarPipelineConfig,
    ImagePipelineConfig,
};

#[test]
fn fisher_vector_pipeline_learns_textures() {
    let classes = 4;
    let spec = ImageDatasetSpec {
        classes,
        noise: 0.3,
        ..ImageDatasetSpec::voc_like(160, 32)
    };
    let (train, test) = spec.generate_split(0.25);
    let labels = one_hot(&train.labels, classes);
    let cfg = ImagePipelineConfig {
        pca_dims: 12,
        gmm_k: 4,
        ..Default::default()
    };
    let pipe = image_classification_pipeline(&cfg, &train.images, &labels);
    let ctx = ExecContext::calibrated(8);
    let (fitted, report) = pipe.fit(&ctx, &demo_opts());
    let acc = accuracy(
        &predictions(&fitted.apply(&test.images, &ctx)),
        &test.labels.collect(),
    );
    let chance = 1.0 / classes as f64;
    assert!(acc > chance + 0.25, "accuracy {} vs chance {}", acc, chance);
    // The DAG must contain the Fig. 5 stages.
    for stage in ["GrayScale", "SIFT", "PCA", "FisherVector", "LinearSolver"] {
        assert!(report.dot.contains(stage), "missing stage {}", stage);
    }
}

#[test]
fn cifar_pipeline_learns_and_selects_convolver() {
    let classes = 4;
    let spec = ImageDatasetSpec {
        classes,
        noise: 0.3,
        ..ImageDatasetSpec::cifar_like(160)
    };
    let (train, test) = spec.generate_split(0.25);
    let labels = one_hot(&train.labels, classes);
    let cfg = CifarPipelineConfig {
        filters: 8,
        filter_size: 5,
        pool: 14,
        ..Default::default()
    };
    let pipe = cifar_pipeline(&cfg, &train.images, &labels);
    let ctx = ExecContext::calibrated(8);
    let (fitted, report) = pipe.fit(&ctx, &demo_opts());
    // The optimizable Convolver must have been resolved.
    let conv_choice = report
        .choices
        .iter()
        .find(|(n, _)| n.contains("Convolver"))
        .map(|(_, c)| c.clone());
    assert!(
        matches!(conv_choice.as_deref(), Some("blas") | Some("fft")),
        "unexpected convolver choice {:?} (random filters are not separable)",
        conv_choice
    );
    let acc = accuracy(
        &predictions(&fitted.apply(&test.images, &ctx)),
        &test.labels.collect(),
    );
    let chance = 1.0 / classes as f64;
    assert!(acc > chance + 0.2, "accuracy {} vs chance {}", acc, chance);
}

#[test]
fn tighter_memory_budget_shrinks_cache_set() {
    let classes = 3;
    let spec = ImageDatasetSpec {
        classes,
        ..ImageDatasetSpec::voc_like(80, 32)
    };
    let ds = spec.generate();
    let labels = one_hot(&ds.labels, classes);
    let cfg = ImagePipelineConfig {
        pca_dims: 8,
        gmm_k: 2,
        ..Default::default()
    };
    let cache_bytes = |budget: u64| {
        let pipe = image_classification_pipeline(&cfg, &ds.images, &labels);
        let ctx = ExecContext::calibrated(8);
        let (_, report) = pipe.fit(&ctx, &demo_opts().with_budget(budget));
        report.cache_set.len()
    };
    let big = cache_bytes(u64::MAX / 2);
    let tiny = cache_bytes(1024);
    assert!(
        tiny <= big,
        "smaller budget must cache no more nodes: {} vs {}",
        tiny,
        big
    );
}

/// Pipeline options with profiling samples scaled to this test's small
/// synthetic dataset (the paper's 512/1024 samples assume millions of
/// records; here they would be the whole dataset).
fn demo_opts() -> PipelineOptions {
    PipelineOptions {
        profile: ProfileOptions {
            sizes: vec![96, 192],
            ..Default::default()
        },
        ..Default::default()
    }
}
