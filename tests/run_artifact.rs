//! End-to-end flight-recorder tests: capture real fit/apply/serve runs as
//! [`RunArtifact`]s and check the two load-bearing properties —
//!
//! 1. **byte-identity**: two identical seeded runs serialize to the same
//!    JSON, byte for byte (deterministic capture nulls every wall field);
//! 2. **diagnosability**: the diagnosis engine surfaces the straggler and
//!    cache-thrash findings the run was engineered to contain, with the
//!    evidence pointing at the right plan nodes.

use keystone_obs::{diagnose, CaptureOptions, RunArtifact, RunKind, ServeSection, SCHEMA_VERSION};
use keystoneml::prelude::*;
use keystoneml::serve::LoadGen;

struct Scale(f64);
impl Transformer<Vec<f64>, Vec<f64>> for Scale {
    fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
        x.iter().map(|v| v * self.0).collect()
    }
}

struct Offset(f64);
impl Transformer<Vec<f64>, Vec<f64>> for Offset {
    fn apply(&self, x: &Vec<f64>) -> Vec<f64> {
        x.iter().map(|v| v + self.0).collect()
    }
}

/// Re-reads its input once per pass so the cache sees repeated lookups.
struct MultiPassMean {
    passes: u32,
}
impl Estimator<Vec<f64>, Vec<f64>> for MultiPassMean {
    fn fit(
        &self,
        _data: &DistCollection<Vec<f64>>,
        _ctx: &ExecContext,
    ) -> Box<dyn Transformer<Vec<f64>, Vec<f64>>> {
        unreachable!("fit_lazy overridden")
    }
    fn fit_lazy(
        &self,
        data: &dyn Fn() -> DistCollection<Vec<f64>>,
        _ctx: &ExecContext,
    ) -> Box<dyn Transformer<Vec<f64>, Vec<f64>>> {
        let mut mu = 0.0;
        for _ in 0..self.passes {
            let d = data();
            let n = d.count().max(1) as f64;
            mu = d.aggregate(0.0, |a, x| a + x[0], |a, b| a + b) / n;
        }
        Box::new(Offset(-mu))
    }
    fn weight(&self) -> u32 {
        self.passes
    }
}

/// The diagnose example's run shape, miniaturized: 6x record skew, an LRU
/// budget that fits one intermediate but not both, seeded cache loss, no
/// stragglers/speculation (their charges are wall-priced).
fn skewed_faulted_fit() -> (RunArtifact, FitReport) {
    let skewed: Vec<Vec<Vec<f64>>> = vec![
        (0..50).map(|i| vec![i as f64, 1.0]).collect(),
        (0..50).map(|i| vec![i as f64, 1.0]).collect(),
        (0..50).map(|i| vec![i as f64, 1.0]).collect(),
        (0..300).map(|i| vec![i as f64, 1.0]).collect(),
    ];
    let train = DistCollection::from_partitions(skewed);
    let pipe = Pipeline::<Vec<f64>, Vec<f64>>::input()
        .and_then(Scale(2.0))
        .and_then(Offset(1.0))
        .and_then_est(MultiPassMean { passes: 6 }, &train);
    let faults = FaultSpec::new(0xD1A6)
        .with_cache_loss(0.35)
        .with_straggler_min_delay_us(1 << 40)
        .into_plan();
    let ctx = ExecContext::default_cluster().with_faults(faults);
    let opts = PipelineOptions {
        caching: CachingStrategy::Lru {
            admission_fraction: 1.0,
        },
        mem_budget: Some(24 * 1024),
        profile: ProfileOptions {
            sizes: vec![32, 64],
            seed: 11,
            select_operators: false,
            deterministic_timing: true,
        },
        ..Default::default()
    }
    .with_fusion(false);
    let (fitted, report) = pipe.fit(&ctx, &opts);
    let artifact =
        RunArtifact::capture_fit(&report, &fitted.plan(), &ctx, &CaptureOptions::default());
    (artifact, report)
}

#[test]
fn two_identical_seeded_runs_are_byte_identical() {
    let (a, _) = skewed_faulted_fit();
    let (b, _) = skewed_faulted_fit();
    let (ja, jb) = (a.to_json(), b.to_json());
    assert!(!ja.is_empty());
    assert_eq!(
        ja, jb,
        "deterministic capture must serialize identical runs to identical bytes"
    );
    assert_eq!(keystone_obs::schema_version_of(&ja), Some(SCHEMA_VERSION));
}

#[test]
fn diagnosis_surfaces_straggler_and_cache_thrash_on_a_real_fit() {
    let (artifact, _) = skewed_faulted_fit();
    let d = diagnose(&artifact);
    let stragglers = d.rule("straggler");
    assert!(
        !stragglers.is_empty(),
        "expected the 6x-skewed stages flagged:\n{}",
        d.render_text()
    );
    for f in &stragglers {
        let row = artifact.node(f.node.expect("node-scoped")).expect("row");
        assert!(
            row.record_skew.expect("record skew") > 2.0,
            "straggler finding must point at a genuinely skewed node"
        );
    }
    assert!(
        !d.rule("cache-thrash").is_empty(),
        "expected evict-then-recompute under the starved LRU budget:\n{}",
        d.render_text()
    );
    // Evidence joins back to the artifact: every node-scoped finding names
    // a real plan node.
    for f in &d.findings {
        if let Some(n) = f.node {
            assert!(n < artifact.plan.nodes.len(), "finding points off-plan");
        }
    }
}

#[test]
fn misprediction_findings_report_the_relative_error() {
    let (artifact, _) = skewed_faulted_fit();
    let d = diagnose(&artifact);
    // The synthetic profile extrapolates from 32/64-record subsamples to
    // the full 450-record run; the deliberate skew makes at least one
    // node's predicted-vs-charged time miss by more than 15%.
    let miss = d.rule("misprediction");
    assert!(!miss.is_empty(), "{}", d.render_text());
    for f in &miss {
        let rel = f
            .evidence
            .iter()
            .find(|(k, _)| *k == "rel_error")
            .map(|(_, v)| *v)
            .expect("rel_error evidence");
        assert!(rel > 0.15, "below the reporting threshold: {rel}");
    }
}

#[test]
fn apply_capture_joins_plan_nodes_without_a_fit_report() {
    let train = DistCollection::from_vec((0..64).map(|i| vec![i as f64]).collect(), 4);
    let pipe = Pipeline::<Vec<f64>, Vec<f64>>::input()
        .and_then(Scale(3.0))
        .and_then_est(MultiPassMean { passes: 2 }, &train);
    let fit_ctx = ExecContext::default_cluster();
    let opts = PipelineOptions {
        profile: ProfileOptions {
            sizes: vec![16, 32],
            seed: 5,
            select_operators: false,
            deterministic_timing: true,
        },
        ..Default::default()
    };
    let (fitted, _) = pipe.fit(&fit_ctx, &opts);

    let apply_ctx = ExecContext::default_cluster();
    let test = DistCollection::from_vec((0..16).map(|i| vec![i as f64]).collect(), 2);
    let _ = fitted.apply(&test, &apply_ctx);
    let artifact =
        RunArtifact::capture_apply(&fitted.plan(), &apply_ctx, &CaptureOptions::default());
    assert_eq!(artifact.kind, RunKind::Apply);
    assert!(artifact.sim_total_secs > 0.0, "apply charges the sim clock");
    assert!(
        artifact.nodes.iter().any(|n| n.execs > 0),
        "apply-path nodes executed"
    );
    // Capture is repeatable from the same context.
    let again = RunArtifact::capture_apply(&fitted.plan(), &apply_ctx, &CaptureOptions::default());
    assert_eq!(artifact.to_json(), again.to_json());
}

#[test]
fn serve_capture_carries_latency_splits_and_virtual_batches() {
    let pipe = Pipeline::<Vec<f64>, Vec<f64>>::input()
        .and_then(Scale(2.0))
        .and_then(Offset(0.5));
    let fit_ctx = ExecContext::default_cluster();
    let (fitted, _) = pipe.fit(&fit_ctx, &PipelineOptions::default());
    let server = Server::new(&fitted, BatchPolicy::new(4, 1e-4).with_queue_capacity(64));
    let pool: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64, 1.0]).collect();

    let run = || {
        let ctx = ExecContext::default_cluster();
        let outcome = server.run(LoadGen::new(9).requests_from_pool(64, 1e-5, &pool), &ctx);
        RunArtifact::capture_serve(
            &fitted.plan(),
            ServeSection::from_outcome(&outcome),
            &ctx,
            &CaptureOptions::default(),
        )
    };
    let artifact = run();
    assert_eq!(artifact.kind, RunKind::Serve);
    let serve = artifact.serve.as_ref().expect("serve section");
    assert_eq!(serve.admitted, 64);
    assert!(serve.batches > 0);
    assert!(serve.p99_latency_secs >= serve.p50_latency_secs);
    assert!(
        serve.execute_secs_total > 0.0,
        "virtual execute time accumulates"
    );
    // ServeBatch events are on the virtual timeline (satellite: the trace
    // exporter lowers them onto the pid-3 serving lanes).
    assert!(artifact
        .events
        .iter()
        .any(|e| matches!(e.event, TraceEvent::ServeBatch { .. })));
    // Identical seeded load => byte-identical serve artifact.
    assert_eq!(artifact.to_json(), run().to_json());
}
