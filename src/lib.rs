//! # KeystoneML (Rust)
//!
//! A reproduction of *KeystoneML: Optimizing Pipelines for Large-Scale
//! Advanced Analytics* (Sparks et al., ICDE 2017) as a Rust workspace.
//!
//! This facade crate re-exports the workspace crates and provides a
//! [`prelude`] with the most common items for building pipelines. See the
//! `examples/` directory for end-to-end applications, `DESIGN.md` for the
//! system inventory, and `EXPERIMENTS.md` for the reproduction results.
//!
//! ```
//! use keystoneml::prelude::*;
//!
//! // A two-stage pipeline: mean-center is an estimator, scaling a
//! // transformer. `fit` runs the whole-pipeline optimizer.
//! struct Double;
//! impl Transformer<f64, f64> for Double {
//!     fn apply(&self, x: &f64) -> f64 { x * 2.0 }
//! }
//! let train = DistCollection::from_vec(vec![1.0, 2.0, 3.0], 2);
//! let pipe = Pipeline::<f64, f64>::input().and_then(Double);
//! let ctx = ExecContext::default_cluster();
//! let (fitted, _report) = pipe.fit(&ctx, &PipelineOptions::default());
//! assert_eq!(fitted.apply(&train, &ctx).collect(), vec![2.0, 4.0, 6.0]);
//! ```

pub use keystone_core as core;
pub use keystone_dataflow as dataflow;
pub use keystone_linalg as linalg;
pub use keystone_obs as obs;
pub use keystone_ops as ops;
pub use keystone_serve as serve;
pub use keystone_solvers as solvers;
pub use keystone_workloads as workloads;

/// Commonly used items for building and running pipelines.
pub mod prelude {
    pub use keystone_core::context::ExecContext;
    pub use keystone_core::operator::{
        ColumnarFn, Estimator, LabelEstimator, OptimizableEstimator, OptimizableLabelEstimator,
        OptimizableTransformer, Transformer,
    };
    pub use keystone_core::optimizer::{
        fit_forest, AdaptationReport, AdaptiveHints, CachingStrategy, CrossMerge, ForestReport,
        OptLevel, PipelineOptions, RevisionRecord, ADAPT_DECISION_SECS,
    };
    pub use keystone_core::pipeline::{gather, FitReport, FittedPipeline, Pipeline};
    pub use keystone_core::profiler::ProfileOptions;
    pub use keystone_core::record::{DataStats, Record};
    pub use keystone_core::report::{NodeReport, PipelineReport, TenantRow};
    pub use keystone_core::trace::{RecoveryStats, TraceEvent, TracedEvent, Tracer};
    pub use keystone_dataflow::cluster::{ClusterProfile, ResourceDesc};
    pub use keystone_dataflow::collection::DistCollection;
    pub use keystone_dataflow::columnar::ColumnarBatch;
    pub use keystone_dataflow::faults::{FaultPlan, FaultSpec};
    pub use keystone_dataflow::metrics::{chrome_trace_json, MetricsRegistry, StageSkew, TaskSpan};
    pub use keystone_linalg::{DenseMatrix, SparseVector};
    pub use keystone_obs::{
        diagnose, replanner_hints, BenchSnapshot, CaptureOptions, Diagnosis, Finding,
        RegressionGate, RunArtifact, Severity,
    };
    pub use keystone_ops::eval::{accuracy, top_k_error};
    pub use keystone_serve::{BatchPolicy, Request, Response, ServeOutcome, Server};
    pub use keystone_solvers::solver_op::LinearSolverOp;
}
